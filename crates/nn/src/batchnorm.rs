//! The [`BatchNorm`] layer with running statistics.

use crate::{BnUpdate, BufferId, Forward, ParamId, ParamSet};
use colper_autodiff::Var;
use colper_tensor::Matrix;

/// Batch normalization over the point (row) axis.
///
/// In training mode, batch statistics are used and running statistics are
/// recorded for later commit (see [`crate::ParamSet::apply_bn_updates`]);
/// in evaluation mode the layer is the affine transform
/// `y = (x - running_mean) / sqrt(running_var + eps) * gamma + beta`,
/// through which input gradients (the attack's color gradients) flow
/// exactly.
#[derive(Debug, Clone, Copy)]
pub struct BatchNorm {
    gamma: ParamId,
    beta: ParamId,
    running_mean: BufferId,
    running_var: BufferId,
    momentum: f32,
    eps: f32,
    dim: usize,
}

impl BatchNorm {
    /// Registers a new layer normalizing `dim`-wide activations.
    pub fn new(params: &mut ParamSet, name: &str, dim: usize) -> Self {
        Self::with_hyper(params, name, dim, 0.1, 1e-5)
    }

    /// Registers a layer with explicit momentum and epsilon.
    pub fn with_hyper(
        params: &mut ParamSet,
        name: &str,
        dim: usize,
        momentum: f32,
        eps: f32,
    ) -> Self {
        let gamma = params.add_param(format!("{name}.gamma"), Matrix::ones(1, dim));
        let beta = params.add_param(format!("{name}.beta"), Matrix::zeros(1, dim));
        let running_mean = params.add_buffer(format!("{name}.running_mean"), Matrix::zeros(1, dim));
        let running_var = params.add_buffer(format!("{name}.running_var"), Matrix::ones(1, dim));
        Self { gamma, beta, running_mean, running_var, momentum, eps, dim }
    }

    /// The normalized feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Applies the layer to `[N, dim]` activations.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not have `dim` columns.
    pub fn forward(&self, f: &mut Forward<'_>, x: Var) -> Var {
        assert_eq!(f.tape.value(x).cols(), self.dim, "BatchNorm: expected {} columns", self.dim);
        if f.training() {
            let gamma = f.param(self.gamma);
            let beta = f.param(self.beta);
            let (y, mean, var) = f.tape.batch_norm_train(x, gamma, beta, self.eps);
            f.record_bn_update(BnUpdate {
                mean_buf: self.running_mean,
                var_buf: self.running_var,
                mean,
                var,
                momentum: self.momentum,
            });
            y
        } else {
            // Fold running stats with gamma/beta into one affine row op:
            // y = x * scale + shift, scale = gamma/sqrt(var+eps),
            // shift = beta - mean*scale.
            let eps = self.eps;
            let var = f.buffer_shared(self.running_var);
            let gamma = f.param(self.gamma);
            let beta = f.param(self.beta);
            let inv_std_row = f.tape.constant_map(&var, |v| 1.0 / (v + eps).sqrt());
            let mean_row = f.tape.constant_shared(f.buffer_shared(self.running_mean));
            let scale = f.tape.mul_row(inv_std_row, gamma); // [1,dim]
            let ms = f.tape.mul(mean_row, scale);
            let shift = f.tape.sub(beta, ms);
            let scaled = f.tape.mul_row(x, scale);
            f.tape.add_row(scaled, shift)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_affine_with_running_stats() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm::new(&mut ps, "bn", 2);
        // running mean 1, var 4 -> y = (x-1)/2 (gamma=1, beta=0, eps tiny)
        *ps.buffer_mut(crate::BufferId(0)) = Matrix::filled(1, 2, 1.0);
        *ps.buffer_mut(crate::BufferId(1)) = Matrix::filled(1, 2, 4.0);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::from_rows(&[&[3.0, 5.0]]).unwrap());
        let y = bn.forward(&mut f, x);
        let v = f.tape.value(y);
        assert!((v[(0, 0)] - 1.0).abs() < 1e-3);
        assert!((v[(0, 1)] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn train_mode_normalizes_batch() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm::new(&mut ps, "bn", 1);
        let mut f = Forward::new(&ps, true);
        let x = f.tape.constant(Matrix::from_rows(&[&[1.0], &[3.0], &[5.0]]).unwrap());
        let y = bn.forward(&mut f, x);
        let v = f.tape.value(y);
        let mean = (v[(0, 0)] + v[(1, 0)] + v[(2, 0)]) / 3.0;
        assert!(mean.abs() < 1e-5);
        let updates = f.into_bn_updates();
        assert_eq!(updates.len(), 1);
        assert!((updates[0].mean[(0, 0)] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn running_stats_converge_to_data_stats() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm::new(&mut ps, "bn", 1);
        let data = Matrix::from_rows(&[&[9.0], &[11.0]]).unwrap(); // mean 10, var 1
        for _ in 0..100 {
            let mut f = Forward::new(&ps, true);
            let x = f.tape.constant(data.clone());
            let _ = bn.forward(&mut f, x);
            let ups = f.into_bn_updates();
            ps.apply_bn_updates(&ups);
        }
        let rm = ps.buffer(crate::BufferId(0))[(0, 0)];
        assert!((rm - 10.0).abs() < 0.1, "running mean {rm}");
    }

    #[test]
    fn eval_mode_passes_input_gradient() {
        let mut ps = ParamSet::new();
        let bn = BatchNorm::new(&mut ps, "bn", 2);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.leaf(Matrix::ones(2, 2));
        let y = bn.forward(&mut f, x);
        let s = f.tape.sum(y);
        f.tape.backward(s);
        assert!(f.tape.grad(x).is_some());
    }
}
