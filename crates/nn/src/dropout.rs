//! Inverted dropout.

use crate::Forward;
use colper_autodiff::Var;
use colper_tensor::Matrix;
use rand::Rng;

/// Inverted dropout: in training mode each activation is zeroed with
/// probability `p` and survivors are scaled by `1 / (1 - p)`; in
/// evaluation mode the layer is the identity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Dropout {
    p: f32,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        Self { p }
    }

    /// The drop probability.
    pub fn probability(&self) -> f32 {
        self.p
    }

    /// Applies dropout to `x`.
    pub fn forward<R: Rng + ?Sized>(&self, f: &mut Forward<'_>, x: Var, rng: &mut R) -> Var {
        if !f.training() || self.p == 0.0 {
            return x;
        }
        let (rows, cols) = f.tape.value(x).shape();
        let keep = 1.0 - self.p;
        let mask =
            Matrix::from_fn(
                rows,
                cols,
                |_, _| {
                    if rng.gen::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                },
            );
        f.tape.mul_const(x, mask)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ParamSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_in_eval_mode() {
        let ps = ParamSet::new();
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::ones(4, 4));
        let d = Dropout::new(0.5);
        let y = d.forward(&mut f, x, &mut StdRng::seed_from_u64(0));
        assert_eq!(x, y);
    }

    #[test]
    fn zeroes_roughly_p_fraction_in_training() {
        let ps = ParamSet::new();
        let mut f = Forward::new(&ps, true);
        let x = f.tape.constant(Matrix::ones(100, 100));
        let d = Dropout::new(0.3);
        let y = d.forward(&mut f, x, &mut StdRng::seed_from_u64(1));
        let v = f.tape.value(y);
        let zeros = v.as_slice().iter().filter(|&&t| t == 0.0).count();
        let frac = zeros as f32 / v.len() as f32;
        assert!((frac - 0.3).abs() < 0.03, "zero fraction {frac}");
        // Survivors are scaled to preserve expectation.
        let mean = v.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn p_zero_is_identity_even_in_training() {
        let ps = ParamSet::new();
        let mut f = Forward::new(&ps, true);
        let x = f.tape.constant(Matrix::ones(2, 2));
        let y = Dropout::new(0.0).forward(&mut f, x, &mut StdRng::seed_from_u64(0));
        assert_eq!(x, y);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn rejects_p_one() {
        let _ = Dropout::new(1.0);
    }
}
