//! The [`Linear`] (fully connected / shared per-point 1x1 convolution)
//! layer.

use crate::{Forward, ParamId, ParamSet};
use colper_autodiff::Var;
use colper_tensor::Initializer;
use rand::Rng;

/// A dense affine layer `y = x W + b`, applied row-wise — for point
/// clouds this is the "shared MLP" primitive: the same weights applied to
/// every point.
#[derive(Debug, Clone, Copy)]
pub struct Linear {
    weight: ParamId,
    bias: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer in `params` with Kaiming-uniform weights.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        bias: bool,
        rng: &mut R,
    ) -> Self {
        let weight = params.add_param(
            format!("{name}.weight"),
            Initializer::KaimingUniform.sample(in_dim, out_dim, rng),
        );
        let bias = bias.then(|| {
            params.add_param(format!("{name}.bias"), Initializer::Zeros.sample(1, out_dim, rng))
        });
        Self { weight, bias, in_dim, out_dim }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// The weight parameter handle.
    pub fn weight(&self) -> ParamId {
        self.weight
    }

    /// Applies the layer to `[N, in_dim]` activations.
    ///
    /// # Panics
    ///
    /// Panics when `x` does not have `in_dim` columns.
    pub fn forward(&self, f: &mut Forward<'_>, x: Var) -> Var {
        assert_eq!(
            f.tape.value(x).cols(),
            self.in_dim,
            "Linear: expected {} input columns",
            self.in_dim
        );
        let w = f.param(self.weight);
        let y = f.tape.matmul(x, w);
        match self.bias {
            Some(b) => {
                let bv = f.param(b);
                f.tape.add_row(y, bv)
            }
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 5, true, &mut rng);
        assert_eq!(lin.in_dim(), 3);
        assert_eq!(lin.out_dim(), 5);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::ones(4, 3));
        let y = lin.forward(&mut f, x);
        assert_eq!(f.tape.value(y).shape(), (4, 5));
    }

    #[test]
    fn bias_shifts_output() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 2, 2, true, &mut rng);
        // Set known weights/bias.
        *ps.param_mut(lin.weight()) = Matrix::identity(2);
        let bias_id = crate::ParamId(1);
        *ps.param_mut(bias_id) = Matrix::from_rows(&[&[1.0, -1.0]]).unwrap();
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::from_rows(&[&[2.0, 3.0]]).unwrap());
        let y = lin.forward(&mut f, x);
        assert_eq!(f.tape.value(y).as_slice(), &[3.0, 2.0]);
    }

    #[test]
    fn gradients_reach_weights_in_training() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 2, 2, true, &mut rng);
        let mut f = Forward::new(&ps, true);
        let x = f.tape.constant(Matrix::ones(3, 2));
        let y = lin.forward(&mut f, x);
        let s = f.tape.sum(y);
        f.tape.backward(s);
        let grads = f.collect_grads();
        assert_eq!(grads.len(), 2, "weight and bias should both get grads");
    }

    #[test]
    #[should_panic(expected = "input columns")]
    fn rejects_wrong_width() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let lin = Linear::new(&mut ps, "l", 3, 5, false, &mut rng);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::ones(4, 2));
        let _ = lin.forward(&mut f, x);
    }
}
