//! Parameter storage ([`ParamSet`]) and the per-pass binding session
//! ([`Forward`]).

use colper_autodiff::{Tape, Var};
use colper_tensor::Matrix;
use std::sync::Arc;

/// Handle to a trainable parameter inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Handle to a non-trainable buffer (e.g. batch-norm running statistics)
/// inside a [`ParamSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(pub(crate) usize);

#[derive(Debug, Clone)]
pub(crate) struct Named {
    pub name: String,
    /// `Arc` so that eval-mode forward passes can bind the matrix onto a
    /// tape as a shared constant without copying the weights every step.
    pub value: Arc<Matrix>,
}

/// Owns all trainable parameters and buffers of a model.
///
/// Layers store [`ParamId`]/[`BufferId`] handles; the numbers live here so
/// that optimizers, serialization and weight transfer all operate on one
/// flat store.
#[derive(Debug, Clone, Default)]
pub struct ParamSet {
    pub(crate) params: Vec<Named>,
    pub(crate) buffers: Vec<Named>,
}

impl ParamSet {
    /// Creates an empty parameter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a trainable parameter; names should be unique and
    /// path-like (`"sa0.mlp1.weight"`).
    pub fn add_param(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.params.push(Named { name: name.into(), value: Arc::new(value) });
        ParamId(self.params.len() - 1)
    }

    /// Registers a non-trainable buffer.
    pub fn add_buffer(&mut self, name: impl Into<String>, value: Matrix) -> BufferId {
        self.buffers.push(Named { name: name.into(), value: Arc::new(value) });
        BufferId(self.buffers.len() - 1)
    }

    /// The current value of a parameter.
    pub fn param(&self, id: ParamId) -> &Matrix {
        &self.params[id.0].value
    }

    /// A shared handle to a parameter's current value (no copy).
    pub fn param_shared(&self, id: ParamId) -> Arc<Matrix> {
        Arc::clone(&self.params[id.0].value)
    }

    /// Mutable access to a parameter (used by optimizers). Clones the
    /// storage only if a forward session still holds it bound to a tape.
    pub fn param_mut(&mut self, id: ParamId) -> &mut Matrix {
        Arc::make_mut(&mut self.params[id.0].value)
    }

    /// The name of a parameter.
    pub fn param_name(&self, id: ParamId) -> &str {
        &self.params[id.0].name
    }

    /// The current value of a buffer.
    pub fn buffer(&self, id: BufferId) -> &Matrix {
        &self.buffers[id.0].value
    }

    /// A shared handle to a buffer's current value (no copy).
    pub fn buffer_shared(&self, id: BufferId) -> Arc<Matrix> {
        Arc::clone(&self.buffers[id.0].value)
    }

    /// Mutable access to a buffer. Clones the storage only if a forward
    /// session still holds it bound to a tape.
    pub fn buffer_mut(&mut self, id: BufferId) -> &mut Matrix {
        Arc::make_mut(&mut self.buffers[id.0].value)
    }

    /// Number of registered parameters (matrices, not scalars).
    pub fn param_count(&self) -> usize {
        self.params.len()
    }

    /// Address-identity fingerprint of every parameter and buffer: the
    /// `Arc` storage pointer of each, as a `usize`.
    ///
    /// Two equal fingerprints mean every weight and running statistic
    /// still lives in the exact storage a captured schedule folded into
    /// its static subgraph — any mutation path ([`ParamSet::param_mut`],
    /// [`ParamSet::buffer_mut`]) copies-on-write into a fresh `Arc`, so a
    /// stale capture can never fingerprint-match. Plain addresses (not
    /// raw pointers) keep holders of a fingerprint `Send`.
    pub fn storage_fingerprint(&self) -> Vec<usize> {
        self.params
            .iter()
            .chain(self.buffers.iter())
            .map(|n| Arc::as_ptr(&n.value) as usize)
            .collect()
    }

    /// Number of registered buffers.
    pub fn buffer_count(&self) -> usize {
        self.buffers.len()
    }

    /// Total number of trainable scalars.
    pub fn num_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// All parameter ids in registration order.
    pub fn param_ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.params.len()).map(ParamId)
    }

    /// Applies the batch-norm running-statistic updates recorded by a
    /// training [`Forward`] pass.
    pub fn apply_bn_updates(&mut self, updates: &[BnUpdate]) {
        for u in updates {
            let mean = self.buffer_mut(u.mean_buf);
            *mean = mean.scale(1.0 - u.momentum).add(&u.mean.scale(u.momentum)).expect("shape");
            let var = self.buffer_mut(u.var_buf);
            *var = var.scale(1.0 - u.momentum).add(&u.var.scale(u.momentum)).expect("shape");
        }
    }
}

/// A recorded batch-norm statistics update, applied after the backward
/// pass via [`ParamSet::apply_bn_updates`].
#[derive(Debug, Clone)]
pub struct BnUpdate {
    /// Running-mean buffer to update.
    pub mean_buf: BufferId,
    /// Running-variance buffer to update.
    pub var_buf: BufferId,
    /// Batch mean observed in this pass.
    pub mean: Matrix,
    /// Batch variance observed in this pass.
    pub var: Matrix,
    /// Exponential-moving-average momentum.
    pub momentum: f32,
}

/// A single forward/backward session: owns the [`Tape`] and binds
/// parameters onto it on demand.
///
/// * `training == true`: parameters bind as differentiable leaves,
///   batch-norm layers use batch statistics and record running-stat
///   updates, dropout is active.
/// * `training == false`: parameters bind as constants — gradients only
///   flow to explicit input leaves, which is exactly what the attack
///   needs.
#[derive(Debug)]
pub struct Forward<'p> {
    /// The tape the session records onto.
    pub tape: Tape,
    params: &'p ParamSet,
    bound: Vec<Option<Var>>,
    training: bool,
    bn_updates: Vec<BnUpdate>,
}

impl<'p> Forward<'p> {
    /// Starts a session over `params`.
    pub fn new(params: &'p ParamSet, training: bool) -> Self {
        Self {
            tape: Tape::new(),
            params,
            bound: vec![None; params.param_count()],
            training,
            bn_updates: Vec::new(),
        }
    }

    /// Starts a session over `params` on a donated tape, recycling the
    /// tape's buffer pools from whatever session used it last.
    ///
    /// This is [`Forward::new`] for warm starts: a caller that kept the
    /// tape of a finished session (via [`Forward::into_tape`]) hands it
    /// back and the first forward pass of the same shape allocates
    /// nothing, exactly like an in-place [`Forward::reset`]. The donated
    /// graph is cleared before use, so the recorded computation is
    /// independent of the tape's history.
    pub fn resume(params: &'p ParamSet, training: bool, mut tape: Tape) -> Self {
        tape.reset();
        Self {
            tape,
            params,
            bound: vec![None; params.param_count()],
            training,
            bn_updates: Vec::new(),
        }
    }

    /// Consumes the session and returns its tape (graph cleared, buffer
    /// pools intact) for donation to a later [`Forward::resume`].
    pub fn into_tape(mut self) -> Tape {
        self.tape.reset();
        self.tape
    }

    /// Starts an evaluation session over `params` on a donated tape that
    /// still carries a captured graph — the tape is *not* reset.
    ///
    /// This is the adoption half of schedule-carrying warm seats: a
    /// compiled `TapeSchedule` replays over the captured node storage, so
    /// clearing the graph would discard exactly what makes the seat warm.
    /// The session must only be driven through schedule replay (or reset
    /// first); recording new ops onto the un-cleared tape would append to
    /// the captured graph. Parameter bindings start empty — replay never
    /// binds parameters.
    pub fn resume_captured(params: &'p ParamSet, tape: Tape) -> Self {
        Self {
            tape,
            params,
            bound: vec![None; params.param_count()],
            training: false,
            bn_updates: Vec::new(),
        }
    }

    /// Consumes the session and returns its tape with the recorded graph
    /// intact (no reset), for donation to [`Forward::resume_captured`]
    /// alongside the schedule compiled against it.
    pub fn into_tape_captured(self) -> Tape {
        self.tape
    }

    /// Whether the session is in training mode.
    pub fn training(&self) -> bool {
        self.training
    }

    /// Clears the recorded graph while keeping the tape's buffer pools, so
    /// the next forward pass of the same shape allocates nothing.
    ///
    /// Parameter bindings and pending batch-norm updates are dropped along
    /// with the graph.
    pub fn reset(&mut self) {
        self.tape.reset();
        self.bound.fill(None);
        self.bn_updates.clear();
    }

    /// Binds parameter `id` onto the tape (cached: repeated calls return
    /// the same [`Var`]).
    ///
    /// Training sessions copy the value into a differentiable leaf;
    /// evaluation sessions share the parameter's storage with the tape as
    /// a constant — no copy, no gradient.
    pub fn param(&mut self, id: ParamId) -> Var {
        if let Some(v) = self.bound[id.0] {
            return v;
        }
        let v = if self.training {
            self.tape.leaf_from(self.params.param(id))
        } else {
            self.tape.constant_shared(self.params.param_shared(id))
        };
        self.bound[id.0] = Some(v);
        v
    }

    /// Runs `f` on a session that records onto *this* session's tape but
    /// binds parameters from `guest` — how a second network joins the
    /// same graph (e.g. the transfer objective's penalty model, whose
    /// hinge is added to the surrogate's). Returned [`Var`]s live on the
    /// shared tape and stay valid after the call.
    ///
    /// The guest's parameter bindings are discarded when `f` returns;
    /// binding the same guest again re-interns its parameters (cheap:
    /// evaluation sessions share storage without copying).
    ///
    /// # Panics
    ///
    /// Panics in training mode — a guest's batch-norm updates would
    /// resolve against the wrong parameter set.
    pub fn with_params<T>(&mut self, guest: &ParamSet, f: impl FnOnce(&mut Forward<'_>) -> T) -> T {
        assert!(!self.training, "with_params: guest networks are evaluation-only");
        let tape = std::mem::replace(&mut self.tape, Tape::new());
        let mut session = Forward {
            tape,
            params: guest,
            bound: vec![None; guest.param_count()],
            training: false,
            bn_updates: Vec::new(),
        };
        let out = f(&mut session);
        self.tape = session.tape;
        out
    }

    /// Reads a buffer's current value.
    pub fn buffer(&self, id: BufferId) -> &'p Matrix {
        self.params.buffer(id)
    }

    /// A shared handle to a buffer's current value (no copy).
    pub fn buffer_shared(&self, id: BufferId) -> Arc<Matrix> {
        self.params.buffer_shared(id)
    }

    /// Records a batch-norm running-statistics update for later commit.
    pub fn record_bn_update(&mut self, update: BnUpdate) {
        self.bn_updates.push(update);
    }

    /// After `tape.backward`, collects the gradient of every bound
    /// parameter (pairs of id and gradient). Parameters that received no
    /// gradient are skipped.
    pub fn collect_grads(&self) -> Vec<(ParamId, Matrix)> {
        let mut out = Vec::new();
        for (i, bound) in self.bound.iter().enumerate() {
            if let Some(var) = bound {
                if let Some(g) = self.tape.grad(*var) {
                    out.push((ParamId(i), g.clone()));
                }
            }
        }
        out
    }

    /// Consumes the session and returns the recorded batch-norm updates.
    pub fn into_bn_updates(self) -> Vec<BnUpdate> {
        self.bn_updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_registration_and_access() {
        let mut ps = ParamSet::new();
        let w = ps.add_param("w", Matrix::ones(2, 3));
        let b = ps.add_buffer("running_mean", Matrix::zeros(1, 3));
        assert_eq!(ps.param(w).shape(), (2, 3));
        assert_eq!(ps.buffer(b).shape(), (1, 3));
        assert_eq!(ps.param_name(w), "w");
        assert_eq!(ps.param_count(), 1);
        assert_eq!(ps.buffer_count(), 1);
        assert_eq!(ps.num_scalars(), 6);
    }

    #[test]
    fn forward_binds_leaves_in_training() {
        let mut ps = ParamSet::new();
        let w = ps.add_param("w", Matrix::ones(1, 2));
        let mut f = Forward::new(&ps, true);
        let v = f.param(w);
        let v2 = f.param(w);
        assert_eq!(v, v2, "binding should be cached");
        let s = f.tape.sum(v);
        f.tape.backward(s);
        assert!(f.tape.grad(v).is_some());
        let grads = f.collect_grads();
        assert_eq!(grads.len(), 1);
        assert_eq!(grads[0].0, w);
    }

    #[test]
    fn forward_binds_constants_in_eval() {
        let mut ps = ParamSet::new();
        let w = ps.add_param("w", Matrix::ones(1, 2));
        let mut f = Forward::new(&ps, false);
        let v = f.param(w);
        // Mix with a leaf so backward has something to differentiate.
        let x = f.tape.leaf(Matrix::ones(1, 2));
        let y = f.tape.mul(x, v);
        let s = f.tape.sum(y);
        f.tape.backward(s);
        assert!(f.tape.grad(v).is_none(), "eval params must not get grads");
        assert!(f.collect_grads().is_empty());
    }

    #[test]
    fn resume_matches_new_and_round_trips_the_tape() {
        let mut ps = ParamSet::new();
        let w = ps.add_param("w", Matrix::filled(2, 2, 0.5));
        let run = |f: &mut Forward<'_>| {
            let v = f.param(w);
            let x = f.tape.leaf(Matrix::filled(2, 2, 3.0));
            let y = f.tape.mul(x, v);
            let s = f.tape.sum(y);
            f.tape.backward(s);
            (f.tape.value(s)[(0, 0)], f.tape.grad(x).expect("leaf grad").clone())
        };
        let mut fresh = Forward::new(&ps, false);
        let (want_v, want_g) = run(&mut fresh);
        // Donate the tape through into_tape -> resume: same values, same
        // gradients, bindings and bn updates dropped with the old graph.
        let tape = fresh.into_tape();
        let mut warmed = Forward::resume(&ps, false, tape);
        let (got_v, got_g) = run(&mut warmed);
        assert_eq!(want_v.to_bits(), got_v.to_bits());
        assert_eq!(want_g, got_g);
        assert!(warmed.collect_grads().is_empty(), "eval params still get no grads");
    }

    #[test]
    fn bn_updates_move_running_stats() {
        let mut ps = ParamSet::new();
        let mean_buf = ps.add_buffer("rm", Matrix::zeros(1, 2));
        let var_buf = ps.add_buffer("rv", Matrix::ones(1, 2));
        ps.apply_bn_updates(&[BnUpdate {
            mean_buf,
            var_buf,
            mean: Matrix::filled(1, 2, 10.0),
            var: Matrix::filled(1, 2, 4.0),
            momentum: 0.1,
        }]);
        assert!((ps.buffer(mean_buf)[(0, 0)] - 1.0).abs() < 1e-6);
        assert!((ps.buffer(var_buf)[(0, 0)] - (0.9 + 0.4)).abs() < 1e-6);
    }
}
