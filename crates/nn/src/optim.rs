//! Optimizers: [`Sgd`], [`Adam`] over a [`ParamSet`], and the standalone
//! [`AdamState`] the attack uses on its perturbation variable.

use crate::{ParamId, ParamSet};
use colper_tensor::Matrix;

/// Adam moment state for a single matrix-shaped variable.
///
/// The COLPER attack optimizes one variable (`w`, the tanh-space color
/// perturbation) with Adam; this struct is that optimizer, and [`Adam`]
/// reuses it per parameter.
#[derive(Debug, Clone)]
pub struct AdamState {
    m: Matrix,
    v: Matrix,
    t: u64,
    beta1: f32,
    beta2: f32,
    eps: f32,
}

impl AdamState {
    /// Creates zeroed moment buffers for a `rows x cols` variable with
    /// the standard Adam hyper-parameters (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            m: Matrix::zeros(rows, cols),
            v: Matrix::zeros(rows, cols),
            t: 0,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
        }
    }

    /// Applies one Adam update to `value` in place, using `grad` and the
    /// learning rate `lr`.
    ///
    /// # Panics
    ///
    /// Panics when the shapes of `value`, `grad` and the state disagree.
    pub fn update(&mut self, value: &mut Matrix, grad: &Matrix, lr: f32) {
        assert_eq!(value.shape(), grad.shape(), "AdamState: value/grad shape mismatch");
        assert_eq!(value.shape(), self.m.shape(), "AdamState: state shape mismatch");
        self.t += 1;
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        let eps = self.eps;
        let m = self.m.as_mut_slice();
        let v = self.v.as_mut_slice();
        let val = value.as_mut_slice();
        for i in 0..val.len() {
            let g = grad.as_slice()[i];
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let mhat = m[i] / bc1;
            let vhat = v[i] / bc2;
            val[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
}

/// Adam over a whole [`ParamSet`].
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    states: Vec<Option<AdamState>>,
}

impl Adam {
    /// Creates an Adam optimizer with learning rate `lr`.
    pub fn with_lr(lr: f32) -> Self {
        Self { lr, states: Vec::new() }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one step over the `(id, gradient)` pairs collected from a
    /// training pass.
    pub fn step(&mut self, params: &mut ParamSet, grads: &[(ParamId, Matrix)]) {
        for (id, grad) in grads {
            if self.states.len() <= id.0 {
                self.states.resize(id.0 + 1, None);
            }
            let value = params.param_mut(*id);
            let state =
                self.states[id.0].get_or_insert_with(|| AdamState::new(value.rows(), value.cols()));
            state.update(value, grad, self.lr);
        }
    }
}

/// Plain stochastic gradient descent (baseline / ablation optimizer).
#[derive(Debug, Clone, Copy)]
pub struct Sgd {
    lr: f32,
}

impl Sgd {
    /// Creates an SGD optimizer with learning rate `lr`.
    pub fn with_lr(lr: f32) -> Self {
        Self { lr }
    }

    /// The learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one descent step.
    pub fn step(&self, params: &mut ParamSet, grads: &[(ParamId, Matrix)]) {
        for (id, grad) in grads {
            let value = params.param_mut(*id);
            let update = grad.scale(self.lr);
            *value = value.sub(&update).expect("shape");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(x: &Matrix) -> Matrix {
        // f(x) = ||x - 3||^2 -> grad = 2(x - 3)
        x.map(|v| 2.0 * (v - 3.0))
    }

    #[test]
    fn adam_state_minimizes_quadratic() {
        let mut x = Matrix::zeros(2, 2);
        let mut adam = AdamState::new(2, 2);
        for _ in 0..500 {
            let g = quadratic_grad(&x);
            adam.update(&mut x, &g, 0.05);
        }
        assert!(x.as_slice().iter().all(|&v| (v - 3.0).abs() < 0.05), "{x:?}");
    }

    #[test]
    fn adam_over_paramset_minimizes() {
        let mut ps = ParamSet::new();
        let id = ps.add_param("x", Matrix::zeros(1, 3));
        let mut adam = Adam::with_lr(0.05);
        for _ in 0..500 {
            let g = quadratic_grad(ps.param(id));
            adam.step(&mut ps, &[(id, g)]);
        }
        assert!(ps.param(id).as_slice().iter().all(|&v| (v - 3.0).abs() < 0.05));
    }

    #[test]
    fn sgd_descends() {
        let mut ps = ParamSet::new();
        let id = ps.add_param("x", Matrix::filled(1, 1, 10.0));
        let sgd = Sgd::with_lr(0.1);
        let before = ps.param(id)[(0, 0)];
        let g = quadratic_grad(ps.param(id));
        sgd.step(&mut ps, &[(id, g)]);
        let after = ps.param(id)[(0, 0)];
        assert!(after < before);
    }

    #[test]
    fn adam_first_step_magnitude_close_to_lr() {
        // Adam's bias correction makes the first step ~lr regardless of
        // gradient scale.
        let mut x = Matrix::zeros(1, 1);
        let mut adam = AdamState::new(1, 1);
        adam.update(&mut x, &Matrix::filled(1, 1, 1000.0), 0.01);
        assert!((x[(0, 0)].abs() - 0.01).abs() < 1e-3, "{x:?}");
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn adam_state_shape_checked() {
        let mut x = Matrix::zeros(1, 2);
        let mut adam = AdamState::new(1, 2);
        adam.update(&mut x, &Matrix::zeros(2, 1), 0.1);
    }
}
