//! Minimal training loop helpers.

use crate::{Adam, Forward, ParamSet};
use colper_autodiff::Var;
use colper_tensor::Matrix;

/// The outcome of one [`train_step`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainStep {
    /// Mean cross-entropy of the step.
    pub loss: f32,
    /// Fraction of rows whose argmax matched the label.
    pub accuracy: f32,
}

/// Runs one supervised step: forward (training mode), softmax
/// cross-entropy against `labels`, backward, Adam update, batch-norm
/// running-stat commit.
///
/// `build` receives the training [`Forward`] session and must return the
/// `[N, classes]` logits.
///
/// # Panics
///
/// Panics when the logit row count differs from `labels.len()`.
pub fn train_step(
    params: &mut ParamSet,
    adam: &mut Adam,
    labels: &[usize],
    build: impl FnOnce(&mut Forward<'_>) -> Var,
) -> TrainStep {
    let (grads, bn_updates, loss, accuracy) = {
        let mut f = Forward::new(params, true);
        let logits = build(&mut f);
        let loss_var = f.tape.softmax_cross_entropy(logits, labels);
        f.tape.backward(loss_var);
        let loss = f.tape.value(loss_var)[(0, 0)];
        let accuracy = accuracy_of(f.tape.value(logits), labels);
        let grads = f.collect_grads();
        (grads, f.into_bn_updates(), loss, accuracy)
    };
    params.apply_bn_updates(&bn_updates);
    adam.step(params, &grads);
    TrainStep { loss, accuracy }
}

/// Evaluates accuracy of logits produced by `build` in evaluation mode.
///
/// # Panics
///
/// Panics when the logit row count differs from `labels.len()`.
pub fn evaluate_accuracy(
    params: &ParamSet,
    labels: &[usize],
    build: impl FnOnce(&mut Forward<'_>) -> Var,
) -> f32 {
    let mut f = Forward::new(params, false);
    let logits = build(&mut f);
    accuracy_of(f.tape.value(logits), labels)
}

fn accuracy_of(logits: &Matrix, labels: &[usize]) -> f32 {
    assert_eq!(logits.rows(), labels.len(), "logits/labels length mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    let preds = logits.argmax_rows();
    let correct = preds.iter().zip(labels).filter(|(p, l)| p == l).count();
    correct as f32 / labels.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, SharedMlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Two linearly separable blobs.
    fn toy_data() -> (Matrix, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..20 {
            let t = i as f32 * 0.05;
            rows.push(vec![t, 1.0 - t]);
            labels.push(0);
            rows.push(vec![-t - 0.5, t - 1.0]);
            labels.push(1);
        }
        let refs: Vec<&[f32]> = rows.iter().map(Vec::as_slice).collect();
        (Matrix::from_rows(&refs).unwrap(), labels)
    }

    #[test]
    fn training_reduces_loss_and_reaches_high_accuracy() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut ps = ParamSet::new();
        let mlp = SharedMlp::new(&mut ps, "m", &[2, 16, 2], Activation::Relu, true, &mut rng);
        let mut adam = Adam::with_lr(0.02);
        let (x, labels) = toy_data();
        let first = train_step(&mut ps, &mut adam, &labels, |f| {
            let xv = f.tape.constant(x.clone());
            mlp.forward(f, xv)
        });
        let mut last = first;
        for _ in 0..150 {
            last = train_step(&mut ps, &mut adam, &labels, |f| {
                let xv = f.tape.constant(x.clone());
                mlp.forward(f, xv)
            });
        }
        assert!(last.loss < first.loss, "loss should fall: {first:?} -> {last:?}");
        let acc = evaluate_accuracy(&ps, &labels, |f| {
            let xv = f.tape.constant(x.clone());
            mlp.forward(f, xv)
        });
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn accuracy_of_counts_matches() {
        let logits = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0], &[5.0, 0.0]]).unwrap();
        assert!((accuracy_of(&logits, &[0, 1, 1]) - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_labels_give_zero_accuracy() {
        let logits = Matrix::zeros(0, 2);
        assert_eq!(accuracy_of(&logits, &[]), 0.0);
    }
}
