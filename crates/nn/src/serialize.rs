//! A small self-contained binary format for [`ParamSet`] checkpoints.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"CLPR"
//! version  u32 (currently 1)
//! n_params u32
//!   per param:  name_len u32, name bytes (UTF-8), rows u32, cols u32,
//!               rows*cols f32 values
//! n_buffers u32, same record layout
//! ```
//!
//! The format exists so pre-trained model weights can be cached between
//! experiment runs without pulling in a serialization dependency.

use crate::param::Named;
use crate::ParamSet;
use colper_tensor::Matrix;
use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

const MAGIC: &[u8; 4] = b"CLPR";
const VERSION: u32 = 1;

/// Errors produced while reading or writing checkpoints.
#[derive(Debug)]
pub enum SerializeError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the checkpoint magic.
    BadMagic,
    /// The checkpoint version is unsupported.
    BadVersion(u32),
    /// A record is malformed (bad UTF-8 name, absurd sizes).
    Corrupt(&'static str),
}

impl fmt::Display for SerializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerializeError::Io(e) => write!(f, "checkpoint i/o failure: {e}"),
            SerializeError::BadMagic => write!(f, "not a COLPER checkpoint (bad magic)"),
            SerializeError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            SerializeError::Corrupt(what) => write!(f, "corrupt checkpoint: {what}"),
        }
    }
}

impl Error for SerializeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SerializeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SerializeError {
    fn from(e: io::Error) -> Self {
        SerializeError::Io(e)
    }
}

/// Writes `params` to `w`. A `&mut` reference can be passed for any
/// writer.
///
/// # Errors
///
/// Returns [`SerializeError::Io`] on write failure.
pub fn save_params<W: Write>(params: &ParamSet, mut w: W) -> Result<(), SerializeError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    write_records(&mut w, &params.params)?;
    write_records(&mut w, &params.buffers)?;
    Ok(())
}

fn write_records<W: Write>(w: &mut W, records: &[Named]) -> Result<(), SerializeError> {
    w.write_all(&(records.len() as u32).to_le_bytes())?;
    for rec in records {
        let name = rec.name.as_bytes();
        w.write_all(&(name.len() as u32).to_le_bytes())?;
        w.write_all(name)?;
        w.write_all(&(rec.value.rows() as u32).to_le_bytes())?;
        w.write_all(&(rec.value.cols() as u32).to_le_bytes())?;
        for v in rec.value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    Ok(())
}

/// Reads a [`ParamSet`] from `r`. A `&mut` reference can be passed for
/// any reader.
///
/// # Errors
///
/// Returns [`SerializeError`] on I/O failure, bad magic/version, or a
/// malformed record.
pub fn load_params<R: Read>(mut r: R) -> Result<ParamSet, SerializeError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(SerializeError::BadVersion(version));
    }
    let params = read_records(&mut r)?;
    let buffers = read_records(&mut r)?;
    Ok(ParamSet { params, buffers })
}

fn read_records<R: Read>(r: &mut R) -> Result<Vec<Named>, SerializeError> {
    let count = read_u32(r)? as usize;
    if count > 1_000_000 {
        return Err(SerializeError::Corrupt("record count too large"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(SerializeError::Corrupt("name too long"));
        }
        let mut name_bytes = vec![0u8; name_len];
        r.read_exact(&mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| SerializeError::Corrupt("name is not UTF-8"))?;
        let rows = read_u32(r)? as usize;
        let cols = read_u32(r)? as usize;
        if rows.saturating_mul(cols) > 256 * 1024 * 1024 {
            return Err(SerializeError::Corrupt("matrix too large"));
        }
        let mut data = vec![0f32; rows * cols];
        let mut buf = [0u8; 4];
        for v in &mut data {
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
        let value = Matrix::from_vec(rows, cols, data)
            .map_err(|_| SerializeError::Corrupt("shape/data mismatch"))?;
        out.push(Named { name, value: std::sync::Arc::new(value) });
    }
    Ok(out)
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SerializeError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_params() -> ParamSet {
        let mut ps = ParamSet::new();
        ps.add_param("layer.weight", Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.5));
        ps.add_param("layer.bias", Matrix::filled(1, 4, -1.25));
        ps.add_buffer("bn.running_mean", Matrix::filled(1, 4, 0.1));
        ps
    }

    #[test]
    fn round_trip_preserves_everything() {
        let ps = sample_params();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(loaded.param_count(), 2);
        assert_eq!(loaded.buffer_count(), 1);
        assert_eq!(loaded.param_name(crate::ParamId(0)), "layer.weight");
        assert_eq!(loaded.param(crate::ParamId(0)), ps.param(crate::ParamId(0)));
        assert_eq!(loaded.buffer(crate::BufferId(0)), ps.buffer(crate::BufferId(0)));
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_params(&b"NOPE\x01\x00\x00\x00"[..]).unwrap_err();
        assert!(matches!(err, SerializeError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CLPR");
        buf.extend_from_slice(&99u32.to_le_bytes());
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerializeError::BadVersion(99)));
    }

    #[test]
    fn truncated_stream_is_io_error() {
        let ps = sample_params();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        let err = load_params(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerializeError::Io(_)));
    }

    #[test]
    fn error_messages_are_lowercase_without_period() {
        let msgs = [
            SerializeError::BadMagic.to_string(),
            SerializeError::BadVersion(3).to_string(),
            SerializeError::Corrupt("x").to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn empty_paramset_round_trips() {
        let ps = ParamSet::new();
        let mut buf = Vec::new();
        save_params(&ps, &mut buf).unwrap();
        let loaded = load_params(buf.as_slice()).unwrap();
        assert_eq!(loaded.param_count(), 0);
        assert_eq!(loaded.buffer_count(), 0);
    }
}
