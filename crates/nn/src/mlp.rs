//! The [`SharedMlp`]: a stack of `Linear -> BatchNorm -> activation`
//! blocks applied point-wise — the workhorse of all three segmentation
//! networks.

use crate::{BatchNorm, Forward, Linear, ParamSet};
use colper_autodiff::Var;
use rand::Rng;

/// Point-wise nonlinearities available to [`SharedMlp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `max(x, 0)`.
    Relu,
    /// Leaky ReLU with slope 0.2 (DeepGCN's default).
    LeakyRelu,
    /// No nonlinearity (used for final logit layers).
    Identity,
}

impl Activation {
    fn apply(self, f: &mut Forward<'_>, x: Var) -> Var {
        match self {
            Activation::Relu => f.tape.relu(x),
            Activation::LeakyRelu => f.tape.leaky_relu(x, 0.2),
            Activation::Identity => x,
        }
    }
}

/// A shared (per-point) MLP: `dims = [in, h1, ..., out]` produces
/// `dims.len() - 1` blocks of `Linear -> [BatchNorm] -> activation`.
/// The final block uses the same activation as the rest; build a second
/// one-layer MLP with [`Activation::Identity`] for logit heads.
#[derive(Debug, Clone)]
pub struct SharedMlp {
    blocks: Vec<(Linear, Option<BatchNorm>, Activation)>,
}

impl SharedMlp {
    /// Registers the MLP's parameters in `params`.
    ///
    /// # Panics
    ///
    /// Panics when `dims` has fewer than two entries.
    pub fn new<R: Rng + ?Sized>(
        params: &mut ParamSet,
        name: &str,
        dims: &[usize],
        activation: Activation,
        batch_norm: bool,
        rng: &mut R,
    ) -> Self {
        assert!(dims.len() >= 2, "SharedMlp needs at least [in, out] dims");
        let mut blocks = Vec::with_capacity(dims.len() - 1);
        for (i, pair) in dims.windows(2).enumerate() {
            let lin =
                Linear::new(params, &format!("{name}.{i}"), pair[0], pair[1], !batch_norm, rng);
            let bn = batch_norm.then(|| BatchNorm::new(params, &format!("{name}.{i}.bn"), pair[1]));
            blocks.push((lin, bn, activation));
        }
        Self { blocks }
    }

    /// Input feature width.
    pub fn in_dim(&self) -> usize {
        self.blocks[0].0.in_dim()
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.blocks.last().expect("non-empty").0.out_dim()
    }

    /// Number of blocks.
    pub fn depth(&self) -> usize {
        self.blocks.len()
    }

    /// Applies the MLP to `[N, in_dim]` activations.
    pub fn forward(&self, f: &mut Forward<'_>, x: Var) -> Var {
        let mut h = x;
        for (lin, bn, act) in &self.blocks {
            h = lin.forward(f, h);
            if let Some(bn) = bn {
                h = bn.forward(f, h);
            }
            h = act.apply(f, h);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_tensor::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shapes_through_stack() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let mlp = SharedMlp::new(&mut ps, "m", &[3, 8, 16, 4], Activation::Relu, true, &mut rng);
        assert_eq!(mlp.in_dim(), 3);
        assert_eq!(mlp.out_dim(), 4);
        assert_eq!(mlp.depth(), 3);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::ones(10, 3));
        let y = mlp.forward(&mut f, x);
        assert_eq!(f.tape.value(y).shape(), (10, 4));
    }

    #[test]
    fn relu_output_nonnegative() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut ps = ParamSet::new();
        let mlp = SharedMlp::new(&mut ps, "m", &[2, 4], Activation::Relu, false, &mut rng);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::from_fn(6, 2, |r, c| (r + c) as f32 - 3.0));
        let y = mlp.forward(&mut f, x);
        assert!(f.tape.value(y).min().unwrap() >= 0.0);
    }

    #[test]
    fn identity_activation_can_go_negative() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut ps = ParamSet::new();
        let mlp = SharedMlp::new(&mut ps, "m", &[2, 4], Activation::Identity, false, &mut rng);
        let mut f = Forward::new(&ps, false);
        let x = f.tape.constant(Matrix::from_fn(6, 2, |r, c| (r * c) as f32 - 3.0));
        let y = mlp.forward(&mut f, x);
        assert!(f.tape.value(y).min().unwrap() < 0.0);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn rejects_single_dim() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut ps = ParamSet::new();
        let _ = SharedMlp::new(&mut ps, "m", &[3], Activation::Relu, false, &mut rng);
    }
}
