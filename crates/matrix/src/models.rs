//! The matrix's victim models: a small zoo trained in-process with
//! fixed seeds, so every run of the matrix attacks identical weights.
//!
//! Unlike the benchmark harness's disk-cached zoo, the [`ModelSet`]
//! always trains fresh — matrix runs must be bit-identical across
//! machines and thread counts, and the training loop already is, so
//! caching would only add a staleness hazard to CI.

use crate::stable_seed;
use colper_models::{
    train_model, CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn,
    ResGcnConfig, SegmentationModel, TrainConfig,
};
use colper_scene::{normalize, IndoorSceneConfig, PointCloud, S3disLikeDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-model training seeds, matching the benchmark harness convention.
fn train_seed(id: &str) -> u64 {
    match id {
        "pointnet" => 11,
        "resgcn" => 22,
        "randla" => 33,
        other => stable_seed(&["train", other]),
    }
}

enum AnyModel {
    PointNet(PointNet2),
    ResGcn(ResGcn),
    RandLa(RandLaNet),
}

impl AnyModel {
    fn as_dyn(&self) -> &dyn SegmentationModel {
        match self {
            AnyModel::PointNet(m) => m,
            AnyModel::ResGcn(m) => m,
            AnyModel::RandLa(m) => m,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn SegmentationModel {
        match self {
            AnyModel::PointNet(m) => m,
            AnyModel::ResGcn(m) => m,
            AnyModel::RandLa(m) => m,
        }
    }
}

/// The trained victims, keyed by the registry's model ids.
pub struct ModelSet {
    entries: Vec<(String, AnyModel)>,
}

impl ModelSet {
    /// Every model id the matrix can train.
    pub const KNOWN: [&'static str; 3] = ["pointnet", "resgcn", "randla"];

    /// Whether a model's normalized view preserves point order.
    /// RandLA-Net's view resamples the cloud, so adversarial colors
    /// optimized in that view cannot be mapped back to the raw scene —
    /// transfer surrogates must preserve order.
    pub fn order_preserving(id: &str) -> bool {
        id != "randla"
    }

    /// Trains the requested models on a shared S3DIS-like dataset.
    /// Deterministic: per-model RNGs are fixed, so the weights depend
    /// only on `ids` and the scale knobs in `cfg`.
    ///
    /// # Panics
    ///
    /// Panics on an id outside [`ModelSet::KNOWN`]; run
    /// [`crate::Registry::validate`] first.
    pub fn train(ids: &[String], cfg: &crate::MatrixConfig) -> Self {
        let dataset = S3disLikeDataset::new(
            IndoorSceneConfig::with_points(cfg.train_points),
            cfg.train_rooms_per_area,
        );
        let rooms = dataset.train_rooms();
        let train_cfg = TrainConfig { epochs: cfg.train_epochs, lr: 0.01, target_accuracy: 0.95 };
        let entries = ids
            .iter()
            .map(|id| {
                let mut rng = StdRng::seed_from_u64(train_seed(id));
                let mut model = match id.as_str() {
                    "pointnet" => AnyModel::PointNet(PointNet2::new(
                        if cfg.small_models {
                            PointNet2Config::small(13)
                        } else {
                            PointNet2Config::tiny(13)
                        },
                        &mut rng,
                    )),
                    "resgcn" => AnyModel::ResGcn(ResGcn::new(
                        if cfg.small_models {
                            ResGcnConfig::small(13)
                        } else {
                            ResGcnConfig::tiny(13)
                        },
                        &mut rng,
                    )),
                    "randla" => AnyModel::RandLa(RandLaNet::new(
                        if cfg.small_models {
                            RandLaNetConfig::small(13)
                        } else {
                            RandLaNetConfig::tiny(13)
                        },
                        &mut rng,
                    )),
                    other => panic!("unknown model id `{other}`"),
                };
                let clouds: Vec<CloudTensors> = rooms
                    .iter()
                    .map(|c| CloudTensors::from_cloud(&view_with(id, c, &mut rng)))
                    .collect();
                let report = train_model(model.as_dyn_mut(), &clouds, &train_cfg, &mut rng);
                eprintln!(
                    "  {id}: acc {:.3} after {} epochs",
                    report.final_accuracy, report.epochs_run
                );
                (id.clone(), model)
            })
            .collect();
        Self { entries }
    }

    /// The trained model behind an id.
    ///
    /// # Panics
    ///
    /// Panics when the id was not trained.
    pub fn get(&self, id: &str) -> &dyn SegmentationModel {
        self.entries
            .iter()
            .find(|(name, _)| name == id)
            .map(|(_, m)| m.as_dyn())
            .unwrap_or_else(|| panic!("model `{id}` is not in the set"))
    }

    /// A model's normalized view of a scene. RandLA-Net's resampling
    /// RNG derives from `(model, scene)` ids only, so viewing the clean
    /// scene and its adversarial counterpart selects identical points —
    /// the replay half of the transfer protocol depends on that.
    pub fn view(&self, id: &str, cloud: &PointCloud, scene_id: &str) -> PointCloud {
        let mut rng = StdRng::seed_from_u64(stable_seed(&["view", id, scene_id]));
        view_with(id, cloud, &mut rng)
    }
}

fn view_with(id: &str, cloud: &PointCloud, rng: &mut StdRng) -> PointCloud {
    match id {
        "pointnet" => normalize::pointnet_view(cloud),
        "resgcn" => normalize::resgcn_view(cloud),
        "randla" => normalize::randla_view(cloud, cloud.len(), rng),
        other => panic!("unknown model id `{other}`"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_scene::SceneGenerator;

    fn tiny_set() -> ModelSet {
        let cfg = crate::MatrixConfig {
            train_points: 64,
            train_rooms_per_area: 1,
            train_epochs: 1,
            ..crate::MatrixConfig::quick()
        };
        ModelSet::train(&["pointnet".to_string(), "randla".to_string()], &cfg)
    }

    #[test]
    fn training_is_deterministic() {
        let a = tiny_set();
        let b = tiny_set();
        let pa = a.get("pointnet").params();
        let pb = b.get("pointnet").params();
        assert_eq!(pa.param_count(), pb.param_count());
        for (ia, ib) in pa.param_ids().zip(pb.param_ids()) {
            assert_eq!(pa.param(ia), pb.param(ib), "same seeds must give bit-identical weights");
        }
    }

    #[test]
    fn randla_view_is_stable_per_scene() {
        let set = tiny_set();
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(3);
        let a = set.view("randla", &cloud, "s1");
        let b = set.view("randla", &cloud, "s1");
        assert_eq!(a.labels, b.labels, "same (model, scene) key must resample identically");
        // A cloud with the same geometry but different colors resamples
        // the same points — the transfer replay invariant.
        let mut recolored = cloud.clone();
        for c in &mut recolored.colors {
            *c = [0.5, 0.5, 0.5];
        }
        let r = set.view("randla", &recolored, "s1");
        assert_eq!(r.labels, a.labels);
        assert_eq!(r.coords, a.coords);
    }

    #[test]
    fn order_preservation_is_declared() {
        assert!(ModelSet::order_preserving("pointnet"));
        assert!(ModelSet::order_preserving("resgcn"));
        assert!(!ModelSet::order_preserving("randla"));
    }

    #[test]
    #[should_panic(expected = "not in the set")]
    fn missing_model_panics() {
        tiny_set().get("resgcn");
    }
}
