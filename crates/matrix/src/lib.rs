//! The attack × defense robustness matrix.
//!
//! The paper evaluates one attack against one model at a time; its
//! future-work section asks how the picture changes when candidate
//! defenses enter. This crate makes that cross-product a first-class
//! subsystem:
//!
//! * a [`Registry`] names the axes — attack objectives
//!   ([`colper_attack::Objective`] ids), composable defense pipelines
//!   ([`colper_defense::DefensePipeline`] specs), victim models, and
//!   evaluation scenes — with stable string ids that key every report
//!   row;
//! * [`run`] executes the full cross-product on the shared
//!   work-stealing [`colper_runtime::Runtime`]: one optimization per
//!   attack unit (geometry plans and [`colper_attack::WarmSeat`]s are
//!   reused across the unit's scenes), then every defense replayed over
//!   the frozen adversarial clouds;
//! * a [`MatrixReport`] ranks defenses by retained accuracy and attacks
//!   by damage dealt, reports surrogate→victim transfer success for the
//!   AdvPC-style objective, and serializes to deterministic JSON
//!   (`results/BENCH_matrix.json`) that is bit-identical across thread
//!   counts.
//!
//! Every random stream in a cell derives from a stable FNV-1a hash of
//! the cell's string ids, never from scheduling order, so the matrix is
//! reproducible cell-by-cell: re-running any single cell standalone
//! yields bit-identical numbers.
//!
//! # Example
//!
//! ```no_run
//! use colper_matrix::{run, MatrixConfig, Registry};
//! use colper_runtime::Runtime;
//!
//! let cfg = MatrixConfig::quick();
//! let registry = Registry::defaults(&cfg);
//! let report = run(&registry, &cfg, &Runtime::new(4)).unwrap();
//! println!("{}", report.table());
//! std::fs::write("results/BENCH_matrix.json", report.to_json()).unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod models;
mod registry;
mod report;
mod runner;

pub use models::ModelSet;
pub use registry::{AttackEntry, Registry, SceneEntry};
pub use report::{
    AttackRank, DefenseRank, MatrixCell, MatrixReport, ModelSummary, TransferSummary, SCHEMA,
};
pub use runner::{run, MatrixConfig};

/// Stable 64-bit FNV-1a hash of a list of id strings, with a separator
/// folded in between parts so `["ab", "c"]` and `["a", "bc"]` differ.
/// Every per-cell RNG seed in the matrix derives from this, which is
/// what makes cells independent of scheduling order and thread count.
pub fn stable_seed(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for part in parts {
        for b in part.bytes() {
            eat(b);
        }
        eat(0x1f);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stable_seed_separates_parts() {
        assert_ne!(stable_seed(&["ab", "c"]), stable_seed(&["a", "bc"]));
        assert_ne!(stable_seed(&["ab"]), stable_seed(&["ab", ""]));
        assert_eq!(stable_seed(&["x", "y"]), stable_seed(&["x", "y"]));
    }
}
