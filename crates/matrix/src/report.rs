//! The ranked robustness report and its deterministic JSON rendering.
//!
//! The JSON carries no timings, thread counts, or anything else that
//! varies between runs: two matrix runs over the same registry and
//! scale produce byte-identical files, which is how CI pins the
//! bit-identical-across-threads contract (`cmp run1.json run2.json`).

use colper_obs::jf;
use std::fmt;

/// Schema tag of the emitted JSON (`results/BENCH_matrix.json`).
pub const SCHEMA: &str = "colper-bench-matrix-v1";

/// One model's undefended clean reference.
#[derive(Debug, Clone)]
pub struct ModelSummary {
    /// Model id.
    pub id: String,
    /// Clean accuracy under the identity defense, mean over scenes.
    pub clean_accuracy: f32,
}

/// One cell of the matrix: an attack replayed through a defense against
/// a model, averaged over the registry's scenes.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Attack id.
    pub attack: String,
    /// Defense pipeline id.
    pub defense: String,
    /// Victim model id.
    pub model: String,
    /// Accuracy on the *clean* scene run through the defense — what the
    /// defense costs when nothing is attacking.
    pub clean_accuracy: f32,
    /// Accuracy on the adversarial scene run through the defense.
    pub adversarial_accuracy: f32,
    /// `clean_accuracy - adversarial_accuracy`.
    pub accuracy_drop: f32,
    /// Per-scene adversarial accuracy, registry scene order.
    pub scene_accuracies: Vec<f32>,
}

/// An attack ranked by the damage it deals undefended.
#[derive(Debug, Clone)]
pub struct AttackRank {
    /// Attack id.
    pub attack: String,
    /// Mean accuracy drop across models under the identity defense.
    pub mean_accuracy_drop: f32,
}

/// A defense ranked by the accuracy it retains under attack.
#[derive(Debug, Clone)]
pub struct DefenseRank {
    /// Defense pipeline id.
    pub defense: String,
    /// Mean adversarial accuracy across every (attack, model) cell.
    pub mean_adversarial_accuracy: f32,
    /// Mean clean accuracy across models — the defense's cost.
    pub mean_clean_accuracy: f32,
}

/// Surrogate→victim replay outcome of a transfer attack (identity
/// defense: the raw transferability signal).
#[derive(Debug, Clone)]
pub struct TransferSummary {
    /// Attack id.
    pub attack: String,
    /// Model the perturbation was optimized on.
    pub surrogate: String,
    /// Model the perturbation was replayed against.
    pub victim: String,
    /// Victim's clean accuracy.
    pub clean_accuracy: f32,
    /// Victim's accuracy on the transferred adversarial scene.
    pub adversarial_accuracy: f32,
    /// `clean_accuracy - adversarial_accuracy`: the transfer success
    /// signal (positive means the perturbation carried over).
    pub accuracy_drop: f32,
}

/// Everything a matrix run produced, ranked.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Scale label (`"quick"` / `"standard"`).
    pub scale: String,
    /// Points per scene.
    pub points: usize,
    /// Attack iterations per optimization.
    pub steps: usize,
    /// Scene rows: `(id, seed, points)`.
    pub scenes: Vec<(String, u64, usize)>,
    /// Undefended clean reference per model.
    pub models: Vec<ModelSummary>,
    /// Every (attack × defense × model) cell, registry order.
    pub cells: Vec<MatrixCell>,
    /// Attacks, most damaging first.
    pub attack_ranking: Vec<AttackRank>,
    /// Defenses, most accuracy retained first.
    pub defense_ranking: Vec<DefenseRank>,
    /// Transfer replay rows (one per surrogate→victim pair and scene
    /// set), strongest transfer first.
    pub transfer: Vec<TransferSummary>,
}

impl MatrixReport {
    /// Assembles a report from raw cells, computing both rankings.
    /// Sorting is NaN-safe (`total_cmp`) with the id as tiebreaker, so
    /// the ranking order is deterministic even for degenerate cells.
    pub fn assemble(
        scale: &str,
        points: usize,
        steps: usize,
        scenes: Vec<(String, u64, usize)>,
        models: Vec<ModelSummary>,
        cells: Vec<MatrixCell>,
        mut transfer: Vec<TransferSummary>,
    ) -> Self {
        let mut attack_ranking: Vec<AttackRank> = unique_ids(cells.iter().map(|c| &c.attack))
            .into_iter()
            .map(|attack| AttackRank {
                mean_accuracy_drop: mean(
                    cells
                        .iter()
                        .filter(|c| c.attack == attack && c.defense == "identity")
                        .map(|c| c.accuracy_drop),
                ),
                attack,
            })
            .collect();
        attack_ranking.sort_by(|a, b| {
            rank_key(b.mean_accuracy_drop)
                .total_cmp(&rank_key(a.mean_accuracy_drop))
                .then_with(|| a.attack.cmp(&b.attack))
        });

        let mut defense_ranking: Vec<DefenseRank> = unique_ids(cells.iter().map(|c| &c.defense))
            .into_iter()
            .map(|defense| DefenseRank {
                mean_adversarial_accuracy: mean(
                    cells.iter().filter(|c| c.defense == defense).map(|c| c.adversarial_accuracy),
                ),
                mean_clean_accuracy: mean(
                    cells.iter().filter(|c| c.defense == defense).map(|c| c.clean_accuracy),
                ),
                defense,
            })
            .collect();
        defense_ranking.sort_by(|a, b| {
            rank_key(b.mean_adversarial_accuracy)
                .total_cmp(&rank_key(a.mean_adversarial_accuracy))
                .then_with(|| a.defense.cmp(&b.defense))
        });

        transfer.sort_by(|a, b| {
            rank_key(b.accuracy_drop)
                .total_cmp(&rank_key(a.accuracy_drop))
                .then_with(|| (&a.surrogate, &a.victim).cmp(&(&b.surrogate, &b.victim)))
        });

        Self {
            scale: scale.to_string(),
            points,
            steps,
            scenes,
            models,
            cells,
            attack_ranking,
            defense_ranking,
            transfer,
        }
    }

    /// Renders the report as one deterministic JSON object.
    pub fn to_json(&self) -> String {
        let scenes: Vec<String> = self
            .scenes
            .iter()
            .map(|(id, seed, points)| {
                format!("{{\"id\":{},\"seed\":{seed},\"points\":{points}}}", js(id))
            })
            .collect();
        let models: Vec<String> = self
            .models
            .iter()
            .map(|m| {
                format!("{{\"id\":{},\"clean_accuracy\":{}}}", js(&m.id), jf(m.clean_accuracy))
            })
            .collect();
        let cells: Vec<String> = self
            .cells
            .iter()
            .map(|c| {
                let per_scene: Vec<String> = c.scene_accuracies.iter().map(|&a| jf(a)).collect();
                format!(
                    "{{\"attack\":{},\"defense\":{},\"model\":{},\"clean_accuracy\":{},\
                     \"adversarial_accuracy\":{},\"accuracy_drop\":{},\"scene_accuracies\":[{}]}}",
                    js(&c.attack),
                    js(&c.defense),
                    js(&c.model),
                    jf(c.clean_accuracy),
                    jf(c.adversarial_accuracy),
                    jf(c.accuracy_drop),
                    per_scene.join(",")
                )
            })
            .collect();
        let attacks: Vec<String> = self
            .attack_ranking
            .iter()
            .map(|r| {
                format!(
                    "{{\"attack\":{},\"mean_accuracy_drop\":{}}}",
                    js(&r.attack),
                    jf(r.mean_accuracy_drop)
                )
            })
            .collect();
        let defenses: Vec<String> = self
            .defense_ranking
            .iter()
            .map(|r| {
                format!(
                    "{{\"defense\":{},\"mean_adversarial_accuracy\":{},\
                     \"mean_clean_accuracy\":{}}}",
                    js(&r.defense),
                    jf(r.mean_adversarial_accuracy),
                    jf(r.mean_clean_accuracy)
                )
            })
            .collect();
        let transfer: Vec<String> = self
            .transfer
            .iter()
            .map(|t| {
                format!(
                    "{{\"attack\":{},\"surrogate\":{},\"victim\":{},\"clean_accuracy\":{},\
                     \"adversarial_accuracy\":{},\"accuracy_drop\":{}}}",
                    js(&t.attack),
                    js(&t.surrogate),
                    js(&t.victim),
                    jf(t.clean_accuracy),
                    jf(t.adversarial_accuracy),
                    jf(t.accuracy_drop)
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{SCHEMA}\",\"scale\":{},\"points\":{},\"steps\":{},\
             \"scenes\":[{}],\"models\":[{}],\"cells\":[{}],\"attack_ranking\":[{}],\
             \"defense_ranking\":[{}],\"transfer\":[{}]}}\n",
            js(&self.scale),
            self.points,
            self.steps,
            scenes.join(","),
            models.join(","),
            cells.join(","),
            attacks.join(","),
            defenses.join(","),
            transfer.join(",")
        )
    }

    /// The end-of-run text the CLI prints.
    pub fn table(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for MatrixReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Robustness matrix ({} scale: {} attacks x {} defenses x {} models x {} scenes) ==",
            self.scale,
            self.attack_ranking.len(),
            self.defense_ranking.len(),
            self.models.len(),
            self.scenes.len()
        )?;
        for m in &self.models {
            writeln!(f, "model {:<10} clean accuracy {:>6.2}%", m.id, m.clean_accuracy * 100.0)?;
        }
        writeln!(f, "\nattacks, most damaging first (undefended accuracy drop):")?;
        for r in &self.attack_ranking {
            writeln!(f, "  {:<16} -{:.2}%", r.attack, r.mean_accuracy_drop * 100.0)?;
        }
        writeln!(f, "\ndefenses, most accuracy retained under attack first:")?;
        for r in &self.defense_ranking {
            writeln!(
                f,
                "  {:<22} adv {:>6.2}%  clean {:>6.2}%",
                r.defense,
                r.mean_adversarial_accuracy * 100.0,
                r.mean_clean_accuracy * 100.0
            )?;
        }
        if !self.transfer.is_empty() {
            writeln!(f, "\ntransfer (surrogate -> victim, identity defense):")?;
            for t in &self.transfer {
                writeln!(
                    f,
                    "  {} -> {:<10} clean {:>6.2}% -> adv {:>6.2}% (drop {:.2}%)",
                    t.surrogate,
                    t.victim,
                    t.clean_accuracy * 100.0,
                    t.adversarial_accuracy * 100.0,
                    t.accuracy_drop * 100.0
                )?;
            }
        }
        Ok(())
    }
}

/// Ranking key: `total_cmp` orders positive NaN above +inf, which would
/// float a degenerate cell to the top of a descending ranking; pin NaN
/// to the bottom instead (ties break on the id, so order stays total).
fn rank_key(v: f32) -> f32 {
    if v.is_nan() {
        f32::NEG_INFINITY
    } else {
        v
    }
}

/// JSON string literal (ids are plain ASCII, but escape defensively).
fn js(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn mean(values: impl Iterator<Item = f32>) -> f32 {
    let (mut sum, mut n) = (0.0f32, 0usize);
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        f32::NAN
    } else {
        sum / n as f32
    }
}

fn unique_ids<'a>(ids: impl Iterator<Item = &'a String>) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for id in ids {
        if !out.iter().any(|seen| seen == id) {
            out.push(id.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(attack: &str, defense: &str, model: &str, clean: f32, adv: f32) -> MatrixCell {
        MatrixCell {
            attack: attack.to_string(),
            defense: defense.to_string(),
            model: model.to_string(),
            clean_accuracy: clean,
            adversarial_accuracy: adv,
            accuracy_drop: clean - adv,
            scene_accuracies: vec![adv],
        }
    }

    fn sample() -> MatrixReport {
        MatrixReport::assemble(
            "quick",
            64,
            4,
            vec![("s0".to_string(), 1, 64)],
            vec![ModelSummary { id: "pointnet".to_string(), clean_accuracy: 0.8 }],
            vec![
                cell("colper", "identity", "pointnet", 0.8, 0.2),
                cell("colper", "smooth(4)", "pointnet", 0.75, 0.5),
                cell("noise(4)", "identity", "pointnet", 0.8, 0.7),
                cell("noise(4)", "smooth(4)", "pointnet", 0.75, 0.72),
            ],
            vec![TransferSummary {
                attack: "transfer(0.5)".to_string(),
                surrogate: "pointnet".to_string(),
                victim: "resgcn".to_string(),
                clean_accuracy: 0.7,
                adversarial_accuracy: 0.5,
                accuracy_drop: 0.2,
            }],
        )
    }

    #[test]
    fn rankings_are_ordered() {
        let r = sample();
        assert_eq!(r.attack_ranking[0].attack, "colper", "bigger drop ranks first");
        assert!(
            r.defense_ranking[0].mean_adversarial_accuracy
                >= r.defense_ranking[1].mean_adversarial_accuracy
        );
        assert_eq!(r.defense_ranking[0].defense, "smooth(4)");
    }

    #[test]
    fn nan_cells_rank_last_not_panic() {
        let mut cells = sample().cells;
        cells.push(cell("broken", "identity", "pointnet", f32::NAN, f32::NAN));
        let r = MatrixReport::assemble("quick", 64, 4, vec![], vec![], cells, vec![]);
        assert_eq!(
            r.attack_ranking.last().unwrap().attack,
            "broken",
            "NaN sorts below every real drop under total_cmp descending"
        );
        assert!(r.to_json().contains("\"mean_accuracy_drop\":null"));
    }

    #[test]
    fn json_is_schema_tagged_and_deterministic() {
        let a = sample().to_json();
        let b = sample().to_json();
        assert_eq!(a, b);
        assert!(a.starts_with("{\"schema\":\"colper-bench-matrix-v1\""));
        assert!(a.ends_with("}\n"));
        assert!(a.contains("\"transfer\":[{\"attack\":\"transfer(0.5)\""));
    }

    #[test]
    fn json_escapes_strings() {
        assert_eq!(js("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(js("tab\tnl\n"), "\"tab\\u0009nl\\u000a\"");
    }

    #[test]
    fn display_mentions_every_section() {
        let text = sample().table();
        assert!(text.contains("Robustness matrix"));
        assert!(text.contains("most damaging first"));
        assert!(text.contains("transfer (surrogate -> victim"));
    }
}
