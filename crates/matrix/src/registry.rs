//! The matrix axes: attacks × defenses × models × scenes, keyed by
//! stable string ids.
//!
//! A [`Registry`] is plain data — building one performs no work; the
//! runner resolves ids against trained models when [`crate::run`] is
//! called. [`Registry::validate`] catches every structural mistake
//! (duplicate ids, unknown models, a transfer attack without its
//! surrogate/penalty pair) before any training starts.

use crate::runner::MatrixConfig;
use colper_attack::Objective;
use colper_defense::{Defense, DefensePipeline};
use std::collections::HashSet;

/// One attack column: an [`Objective`] plus, for the transfer
/// objective, the surrogate it optimizes on and the penalty network
/// regularizing the optimization.
#[derive(Debug, Clone)]
pub struct AttackEntry {
    /// Stable id keying report rows; defaults to the objective's id.
    pub id: String,
    /// What the attacker optimizes for.
    pub objective: Objective,
    /// Transfer only: the model id the perturbation is optimized on.
    /// The resulting colors are replayed against every victim model.
    pub surrogate: Option<String>,
    /// Transfer only: the model id whose CW hinge is added at weight γ.
    pub penalty: Option<String>,
}

impl AttackEntry {
    /// A white-box entry: the objective optimized directly against each
    /// victim model, id taken from the objective.
    pub fn white_box(objective: Objective) -> Self {
        Self { id: objective.id(), objective, surrogate: None, penalty: None }
    }

    /// A transfer entry: optimized once per scene on `surrogate` with
    /// `penalty` as the second network, replayed on every victim.
    pub fn transfer(gamma: f32, surrogate: &str, penalty: &str) -> Self {
        let objective = Objective::Transfer { gamma };
        Self {
            id: objective.id(),
            objective,
            surrogate: Some(surrogate.to_string()),
            penalty: Some(penalty.to_string()),
        }
    }

    /// Whether this entry optimizes once on a surrogate and replays on
    /// victims (vs. optimizing against each victim directly).
    pub fn is_transfer(&self) -> bool {
        self.objective.needs_penalty_model()
    }
}

/// One evaluation scene: a synthetic indoor block generated from a
/// fixed seed.
#[derive(Debug, Clone)]
pub struct SceneEntry {
    /// Stable id keying report rows.
    pub id: String,
    /// Scene-generator seed.
    pub seed: u64,
    /// Points in the block.
    pub points: usize,
}

/// The full cross-product the runner executes.
pub struct Registry {
    /// Attack columns.
    pub attacks: Vec<AttackEntry>,
    /// Defense rows, each a composable pipeline. Must include the
    /// identity pipeline — it is the undefended reference every ranking
    /// is measured against.
    pub defenses: Vec<DefensePipeline>,
    /// Victim model ids (see [`crate::ModelSet::KNOWN`]).
    pub models: Vec<String>,
    /// Evaluation scenes.
    pub scenes: Vec<SceneEntry>,
}

impl Registry {
    /// The default registry for a scale: four attack objectives
    /// (COLPER non-targeted, boundary-focused, AdvPC-style transfer,
    /// and the matched-L2 noise floor), six defense pipelines including
    /// identity and a two-stage chain, all three models, two scenes.
    pub fn defaults(cfg: &MatrixConfig) -> Self {
        let parse = |spec: &str| {
            DefensePipeline::parse(spec).expect("default registry pipelines are well-formed")
        };
        Self {
            attacks: vec![
                AttackEntry::white_box(Objective::NonTargeted),
                AttackEntry::white_box(Objective::Boundary { k: 4 }),
                AttackEntry::transfer(0.5, "pointnet", "resgcn"),
                AttackEntry::white_box(Objective::NoiseBaseline { l2_sq: 4.0 }),
            ],
            defenses: vec![
                parse("identity"),
                parse("quantize(3)"),
                parse("smooth(4)"),
                parse("gauss(0.05)"),
                parse("drop(0.25)"),
                parse("quantize(4)|smooth(4)"),
            ],
            models: vec!["pointnet".to_string(), "resgcn".to_string(), "randla".to_string()],
            scenes: vec![
                SceneEntry { id: "office_a".to_string(), seed: 9101, points: cfg.points },
                SceneEntry { id: "office_b".to_string(), seed: 9102, points: cfg.points },
            ],
        }
    }

    /// Checks the registry is runnable: non-empty axes, unique ids, an
    /// identity defense present, known model ids, and every transfer
    /// attack naming a distinct, order-preserving surrogate/penalty
    /// pair from the model axis.
    pub fn validate(&self) -> Result<(), String> {
        if self.attacks.is_empty()
            || self.defenses.is_empty()
            || self.models.is_empty()
            || self.scenes.is_empty()
        {
            return Err("registry has an empty axis".to_string());
        }
        unique("attack", self.attacks.iter().map(|a| a.id.as_str()))?;
        unique(
            "defense",
            self.defenses.iter().map(Defense::id).collect::<Vec<_>>().iter().map(String::as_str),
        )?;
        unique("model", self.models.iter().map(String::as_str))?;
        unique("scene", self.scenes.iter().map(|s| s.id.as_str()))?;
        if !self.defenses.iter().any(|d| d.id() == "identity") {
            return Err(
                "registry must include the identity defense (the undefended reference)".to_string()
            );
        }
        for model in &self.models {
            if !crate::ModelSet::KNOWN.contains(&model.as_str()) {
                return Err(format!(
                    "unknown model `{model}` (expected one of {})",
                    crate::ModelSet::KNOWN.join(", ")
                ));
            }
        }
        for scene in &self.scenes {
            if scene.points == 0 {
                return Err(format!("scene `{}` has zero points", scene.id));
            }
        }
        for attack in &self.attacks {
            if attack.is_transfer() {
                let surrogate = attack
                    .surrogate
                    .as_deref()
                    .ok_or_else(|| format!("attack `{}` needs a surrogate model", attack.id))?;
                let penalty = attack
                    .penalty
                    .as_deref()
                    .ok_or_else(|| format!("attack `{}` needs a penalty model", attack.id))?;
                for (role, id) in [("surrogate", surrogate), ("penalty", penalty)] {
                    if !self.models.iter().any(|m| m == id) {
                        return Err(format!(
                            "attack `{}` names {role} `{id}` which is not on the model axis",
                            attack.id
                        ));
                    }
                    if !crate::ModelSet::order_preserving(id) {
                        return Err(format!(
                            "attack `{}` {role} `{id}` resamples its input; transfer needs an \
                             order-preserving view to map colors back to the scene",
                            attack.id
                        ));
                    }
                }
                if surrogate == penalty {
                    return Err(format!(
                        "attack `{}` surrogate and penalty must differ",
                        attack.id
                    ));
                }
            } else if attack.surrogate.is_some() || attack.penalty.is_some() {
                return Err(format!(
                    "attack `{}` is not a transfer objective but names a surrogate/penalty",
                    attack.id
                ));
            }
        }
        Ok(())
    }
}

fn unique<'a>(what: &str, ids: impl Iterator<Item = &'a str>) -> Result<(), String> {
    let mut seen = HashSet::new();
    for id in ids {
        if !seen.insert(id.to_string()) {
            return Err(format!("duplicate {what} id `{id}`"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Registry {
        Registry::defaults(&MatrixConfig::quick())
    }

    #[test]
    fn default_registry_validates() {
        quick().validate().unwrap();
    }

    #[test]
    fn default_registry_meets_the_matrix_floor() {
        let r = quick();
        assert!(r.attacks.len() >= 3, "need at least 3 attack objectives");
        assert!(r.defenses.len() >= 4, "need at least 4 defenses");
        assert!(r.defenses.iter().any(|d| d.id() == "identity"));
        assert_eq!(r.models.len(), 3);
    }

    #[test]
    fn duplicate_ids_are_rejected() {
        let mut r = quick();
        r.models.push("pointnet".to_string());
        assert!(r.validate().unwrap_err().contains("duplicate model"));
    }

    #[test]
    fn identity_defense_is_required() {
        let mut r = quick();
        r.defenses.retain(|d| d.id() != "identity");
        assert!(r.validate().unwrap_err().contains("identity"));
    }

    #[test]
    fn transfer_surrogate_must_preserve_order() {
        let mut r = quick();
        r.attacks = vec![AttackEntry::transfer(0.5, "randla", "resgcn")];
        assert!(r.validate().unwrap_err().contains("order-preserving"));
    }

    #[test]
    fn transfer_pair_must_be_on_the_model_axis() {
        let mut r = quick();
        r.models.retain(|m| m != "resgcn");
        assert!(r.validate().unwrap_err().contains("model axis"));
    }

    #[test]
    fn unknown_models_are_rejected() {
        let mut r = quick();
        r.models.push("transformer".to_string());
        assert!(r.validate().unwrap_err().contains("unknown model"));
    }
}
