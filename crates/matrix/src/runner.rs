//! The deterministic two-phase matrix runner.
//!
//! **Phase 1 — attack units.** One optimization per `(attack, model,
//! scene)` for white-box attacks, one per `(attack, scene)` on the
//! surrogate for transfer attacks. Units are scheduled over the shared
//! runtime as stealable tasks; within a unit, the scenes share a
//! [`WarmSeat`] (tape reuse) and each scene's [`AttackPlan`] serves the
//! clean prediction and every attack step.
//!
//! **Phase 2 — defense cells.** The frozen adversarial clouds are
//! replayed through every defense pipeline and re-evaluated; clean
//! scenes take the same trip to price each defense's cost.
//!
//! Every RNG seed derives from [`crate::stable_seed`] over the cell's
//! string ids — never from scheduling order — so the report is
//! bit-identical at any thread count, and any single cell can be
//! reproduced standalone by an [`AttackSession`] with the same seed.

use crate::registry::{AttackEntry, Registry};
use crate::report::{MatrixCell, MatrixReport, ModelSummary, TransferSummary};
use crate::{stable_seed, ModelSet};
use colper_attack::{apply_adversarial_colors, AttackConfig, AttackPlan, AttackSession, WarmSeat};
use colper_defense::Defense;
use colper_metrics::ConfusionMatrix;
use colper_models::{CloudTensors, SegmentationModel};
use colper_runtime::Runtime;
use colper_scene::{IndoorSceneConfig, PointCloud, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Scale knobs of a matrix run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Scale label carried into the report (`"quick"` / `"standard"`).
    pub scale: &'static str,
    /// Points per evaluation scene.
    pub points: usize,
    /// COLPER iterations per optimization.
    pub steps: usize,
    /// Points per training room.
    pub train_points: usize,
    /// Training rooms per S3DIS-like area.
    pub train_rooms_per_area: usize,
    /// Training epoch cap.
    pub train_epochs: usize,
    /// `small` model configs instead of `tiny`.
    pub small_models: bool,
}

impl MatrixConfig {
    /// CI smoke scale: seconds, tiny models.
    pub fn quick() -> Self {
        Self {
            scale: "quick",
            points: 128,
            steps: 12,
            train_points: 128,
            train_rooms_per_area: 2,
            train_epochs: 6,
            small_models: false,
        }
    }

    /// Default (CPU-minutes) scale.
    pub fn standard() -> Self {
        Self {
            scale: "standard",
            points: 256,
            steps: 60,
            train_points: 256,
            train_rooms_per_area: 4,
            train_epochs: 12,
            small_models: true,
        }
    }
}

/// One phase-1 work item.
enum Unit {
    /// Optimize `attack` directly against `model` on every scene.
    WhiteBox { attack: usize, model: usize },
    /// Optimize `attack` once per scene on its surrogate; victims
    /// replay the colors later.
    Transfer { attack: usize },
}

/// A phase-1 result: per-scene adversarial clouds.
enum UnitOut {
    /// Adversarial clouds in the victim's own view space.
    WhiteBox { attack: usize, model: usize, advs: Vec<PointCloud> },
    /// Adversarial clouds in raw scene space (surrogate view preserves
    /// point order, so the colors map straight back).
    Transfer { attack: usize, raw_advs: Vec<PointCloud> },
}

/// Runs the full cross-product and assembles the ranked report.
///
/// Validates the registry, trains the [`ModelSet`], then executes both
/// phases on `runtime` (installed as the ambient pool for the duration,
/// so attack internals parallelize on it too).
pub fn run(
    registry: &Registry,
    cfg: &MatrixConfig,
    runtime: &Runtime,
) -> Result<MatrixReport, String> {
    registry.validate()?;
    Ok(runtime.install(|| run_validated(registry, cfg, runtime)))
}

fn run_validated(registry: &Registry, cfg: &MatrixConfig, runtime: &Runtime) -> MatrixReport {
    eprintln!("matrix: training {} models ({} scale)...", registry.models.len(), cfg.scale);
    let set = ModelSet::train(&registry.models, cfg);

    let raw_scenes: Vec<PointCloud> = registry
        .scenes
        .iter()
        .map(|s| SceneGenerator::indoor(IndoorSceneConfig::with_points(s.points)).generate(s.seed))
        .collect();

    // Each model's clean view of each scene, shared by both phases.
    // RandLA's resampling seed is keyed on (model, scene), so viewing
    // the adversarial counterpart later selects the same points.
    let clean_views: Vec<Vec<PointCloud>> = registry
        .models
        .iter()
        .map(|m| {
            registry
                .scenes
                .iter()
                .zip(&raw_scenes)
                .map(|(s, raw)| set.view(m, raw, &s.id))
                .collect()
        })
        .collect();

    // ---- Phase 1: attack units.
    let mut units = Vec::new();
    for (ai, attack) in registry.attacks.iter().enumerate() {
        if attack.is_transfer() {
            units.push(Unit::Transfer { attack: ai });
        } else {
            for mi in 0..registry.models.len() {
                units.push(Unit::WhiteBox { attack: ai, model: mi });
            }
        }
    }
    eprintln!(
        "matrix: phase 1 — {} attack units over {} scenes...",
        units.len(),
        registry.scenes.len()
    );
    let unit_outs: Vec<UnitOut> = runtime.par_map_grained(units.len(), 1, |ui| match units[ui] {
        Unit::WhiteBox { attack, model } => UnitOut::WhiteBox {
            attack,
            model,
            advs: run_white_box_unit(registry, cfg, &set, &clean_views, attack, model),
        },
        Unit::Transfer { attack } => UnitOut::Transfer {
            attack,
            raw_advs: run_transfer_unit(registry, cfg, &set, &clean_views, &raw_scenes, attack),
        },
    });

    // Adversarial clouds per (attack, model, scene), in the victim's
    // view space. Transfer units fan out to every victim here.
    let mut adv_views: Vec<Vec<Option<Vec<PointCloud>>>> =
        vec![vec![None; registry.models.len()]; registry.attacks.len()];
    for out in unit_outs {
        match out {
            UnitOut::WhiteBox { attack, model, advs } => {
                adv_views[attack][model] = Some(advs);
            }
            UnitOut::Transfer { attack, raw_advs } => {
                for (mi, m) in registry.models.iter().enumerate() {
                    let views = registry
                        .scenes
                        .iter()
                        .zip(&raw_advs)
                        .map(|(s, raw_adv)| set.view(m, raw_adv, &s.id))
                        .collect();
                    adv_views[attack][mi] = Some(views);
                }
            }
        }
    }

    // ---- Phase 2: defended clean references, then the cells.
    eprintln!(
        "matrix: phase 2 — {} cells...",
        registry.attacks.len() * registry.defenses.len() * registry.models.len()
    );
    let clean_pairs: Vec<(usize, usize)> = (0..registry.defenses.len())
        .flat_map(|di| (0..registry.models.len()).map(move |mi| (di, mi)))
        .collect();
    let clean_accs: Vec<Vec<f32>> = runtime.par_map_grained(clean_pairs.len(), 1, |pi| {
        let (di, mi) = clean_pairs[pi];
        let defense = &registry.defenses[di];
        let model = set.get(&registry.models[mi]);
        registry
            .scenes
            .iter()
            .enumerate()
            .map(|(si, scene)| {
                let seed = stable_seed(&["clean", &defense.id(), &registry.models[mi], &scene.id]);
                let mut rng = StdRng::seed_from_u64(seed);
                defended_accuracy(model, defense, &clean_views[mi][si], &mut rng)
            })
            .collect()
    });
    let clean_acc_of = |di: usize, mi: usize| -> &Vec<f32> {
        &clean_accs[clean_pairs.iter().position(|&p| p == (di, mi)).expect("pair enumerated")]
    };

    let cell_keys: Vec<(usize, usize, usize)> = (0..registry.attacks.len())
        .flat_map(|ai| {
            (0..registry.defenses.len())
                .flat_map(move |di| (0..registry.models.len()).map(move |mi| (ai, di, mi)))
        })
        .collect();
    let cells: Vec<MatrixCell> = runtime.par_map_grained(cell_keys.len(), 1, |ci| {
        let (ai, di, mi) = cell_keys[ci];
        let attack = &registry.attacks[ai];
        let defense = &registry.defenses[di];
        let model = set.get(&registry.models[mi]);
        let advs = adv_views[ai][mi].as_ref().expect("phase 1 covered every (attack, model)");
        let scene_accuracies: Vec<f32> = registry
            .scenes
            .iter()
            .enumerate()
            .map(|(si, scene)| {
                let seed = stable_seed(&[
                    "cell",
                    &attack.id,
                    &defense.id(),
                    &registry.models[mi],
                    &scene.id,
                ]);
                let mut rng = StdRng::seed_from_u64(seed);
                defended_accuracy(model, defense, &advs[si], &mut rng)
            })
            .collect();
        colper_obs::counters::MATRIX_CELLS.incr();
        let clean = mean(clean_acc_of(di, mi));
        let adv = mean(&scene_accuracies);
        MatrixCell {
            attack: attack.id.clone(),
            defense: defense.id(),
            model: registry.models[mi].clone(),
            clean_accuracy: clean,
            adversarial_accuracy: adv,
            accuracy_drop: clean - adv,
            scene_accuracies,
        }
    });

    // Undefended clean reference per model = identity-defense clean.
    let identity = registry
        .defenses
        .iter()
        .position(|d| d.id() == "identity")
        .expect("validate() requires identity");
    let models: Vec<ModelSummary> = registry
        .models
        .iter()
        .enumerate()
        .map(|(mi, id)| ModelSummary {
            id: id.clone(),
            clean_accuracy: mean(clean_acc_of(identity, mi)),
        })
        .collect();

    // Transfer rows: identity-defense cells of every victim other than
    // the surrogate.
    let transfer: Vec<TransferSummary> = registry
        .attacks
        .iter()
        .filter(|a| a.is_transfer())
        .flat_map(|a| {
            let surrogate = a.surrogate.clone().expect("validated");
            cells
                .iter()
                .filter(|c| c.attack == a.id && c.defense == "identity" && c.model != surrogate)
                .map(|c| TransferSummary {
                    attack: a.id.clone(),
                    surrogate: surrogate.clone(),
                    victim: c.model.clone(),
                    clean_accuracy: c.clean_accuracy,
                    adversarial_accuracy: c.adversarial_accuracy,
                    accuracy_drop: c.accuracy_drop,
                })
                .collect::<Vec<_>>()
        })
        .collect();

    MatrixReport::assemble(
        cfg.scale,
        cfg.points,
        cfg.steps,
        registry.scenes.iter().map(|s| (s.id.clone(), s.seed, s.points)).collect(),
        models,
        cells,
        transfer,
    )
}

/// The attack configuration an entry optimizes under.
fn attack_config(entry: &AttackEntry, cfg: &MatrixConfig) -> AttackConfig {
    let mut a = AttackConfig::non_targeted(cfg.steps);
    a.goal = entry.objective.goal();
    a
}

/// Phase-1 white-box unit: optimize one attack against one model over
/// every scene, sharing a warm seat; per-scene plans serve every step.
fn run_white_box_unit(
    registry: &Registry,
    cfg: &MatrixConfig,
    set: &ModelSet,
    clean_views: &[Vec<PointCloud>],
    ai: usize,
    mi: usize,
) -> Vec<PointCloud> {
    let entry = &registry.attacks[ai];
    let model_id = &registry.models[mi];
    let model = set.get(model_id);
    let mut seat = WarmSeat::new();
    registry
        .scenes
        .iter()
        .enumerate()
        .map(|(si, scene)| {
            let view = &clean_views[mi][si];
            let tensors = CloudTensors::from_cloud(view);
            let a_cfg = attack_config(entry, cfg);
            let plan = AttackPlan::build(model, &tensors, &a_cfg);
            let seed = stable_seed(&["attack", &entry.id, model_id, &scene.id]);
            let mut rng = StdRng::seed_from_u64(seed);
            let result = AttackSession::new(a_cfg)
                .objective(entry.objective.clone())
                .plan(&plan)
                .run_with_rng_seated(model, &tensors, &mut rng, &mut seat);
            colper_obs::counters::MATRIX_ATTACK_RUNS.incr();
            apply_adversarial_colors(view, &result.adversarial_colors)
        })
        .collect()
}

/// Phase-1 transfer unit: optimize on the surrogate (penalized by the
/// second network's hinge) and write the colors back onto the raw
/// scene — the surrogate view preserves point order, so the adversarial
/// color block is scene-order too.
fn run_transfer_unit(
    registry: &Registry,
    cfg: &MatrixConfig,
    set: &ModelSet,
    clean_views: &[Vec<PointCloud>],
    raw_scenes: &[PointCloud],
    ai: usize,
) -> Vec<PointCloud> {
    let entry = &registry.attacks[ai];
    let surrogate_id = entry.surrogate.as_deref().expect("validated");
    let penalty_id = entry.penalty.as_deref().expect("validated");
    let si_model = registry.models.iter().position(|m| m == surrogate_id).expect("validated");
    let pi_model = registry.models.iter().position(|m| m == penalty_id).expect("validated");
    let surrogate = set.get(surrogate_id);
    let penalty = set.get(penalty_id);
    let mut seat = WarmSeat::new();
    registry
        .scenes
        .iter()
        .enumerate()
        .map(|(si, scene)| {
            let view = &clean_views[si_model][si];
            let tensors = CloudTensors::from_cloud(view);
            let penalty_tensors = CloudTensors::from_cloud(&clean_views[pi_model][si]);
            let a_cfg = attack_config(entry, cfg);
            let plan = AttackPlan::build(surrogate, &tensors, &a_cfg);
            let seed = stable_seed(&["attack", &entry.id, surrogate_id, &scene.id]);
            let mut rng = StdRng::seed_from_u64(seed);
            let result = AttackSession::new(a_cfg)
                .objective(entry.objective.clone())
                .plan(&plan)
                .penalty_model(penalty)
                .penalty_view(&penalty_tensors)
                .run_with_rng_seated(surrogate, &tensors, &mut rng, &mut seat);
            colper_obs::counters::MATRIX_ATTACK_RUNS.incr();
            apply_adversarial_colors(&raw_scenes[si], &result.adversarial_colors)
        })
        .collect()
}

/// Runs a cloud through a defense pipeline and scores the model on what
/// comes out. Point-dropping defenses shrink the cloud; accuracy is
/// against the surviving points' labels.
fn defended_accuracy(
    model: &dyn SegmentationModel,
    defense: &(impl Defense + ?Sized),
    cloud: &PointCloud,
    rng: &mut StdRng,
) -> f32 {
    let defended = defense.apply(cloud, rng);
    let tensors = CloudTensors::from_cloud(&defended);
    let predictions = colper_models::predict(model, &tensors, rng);
    let mut cm = ConfusionMatrix::new(tensors.num_classes);
    cm.update(&predictions, &tensors.labels);
    cm.accuracy()
}

fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        f32::NAN
    } else {
        values.iter().sum::<f32>() / values.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SceneEntry;
    use colper_attack::Objective;

    /// A minimal registry that still exercises every unit kind.
    fn tiny_registry() -> Registry {
        let parse = |s: &str| colper_defense::DefensePipeline::parse(s).unwrap();
        Registry {
            attacks: vec![
                AttackEntry::white_box(Objective::NonTargeted),
                AttackEntry::transfer(0.5, "pointnet", "resgcn"),
                AttackEntry::white_box(Objective::NoiseBaseline { l2_sq: 2.0 }),
            ],
            defenses: vec![parse("identity"), parse("quantize(3)")],
            models: vec!["pointnet".to_string(), "resgcn".to_string()],
            scenes: vec![SceneEntry { id: "s0".to_string(), seed: 5, points: 80 }],
        }
    }

    fn tiny_cfg() -> MatrixConfig {
        MatrixConfig {
            steps: 3,
            points: 80,
            train_points: 64,
            train_rooms_per_area: 1,
            train_epochs: 2,
            ..MatrixConfig::quick()
        }
    }

    #[test]
    fn matrix_is_bit_identical_across_thread_counts() {
        let registry = tiny_registry();
        let cfg = tiny_cfg();
        let one = run(&registry, &cfg, &Runtime::new(1)).unwrap().to_json();
        let four = run(&registry, &cfg, &Runtime::new(4)).unwrap().to_json();
        assert_eq!(one, four);
    }

    #[test]
    fn report_covers_the_full_cross_product() {
        let registry = tiny_registry();
        let report = run(&registry, &tiny_cfg(), &Runtime::new(2)).unwrap();
        assert_eq!(report.cells.len(), 3 * 2 * 2);
        assert_eq!(report.attack_ranking.len(), 3);
        assert_eq!(report.defense_ranking.len(), 2);
        assert_eq!(report.models.len(), 2);
        // Transfer reports the one victim that is not the surrogate.
        assert_eq!(report.transfer.len(), 1);
        assert_eq!(report.transfer[0].surrogate, "pointnet");
        assert_eq!(report.transfer[0].victim, "resgcn");
        for c in &report.cells {
            assert!(c.clean_accuracy.is_finite());
            assert!(c.adversarial_accuracy.is_finite());
        }
    }

    #[test]
    fn invalid_registry_is_rejected_before_training() {
        let mut registry = tiny_registry();
        registry.defenses.clear();
        assert!(run(&registry, &tiny_cfg(), &Runtime::new(1)).is_err());
    }
}
