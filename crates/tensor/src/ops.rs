//! Elementwise math, matrix multiplication and reductions on [`Matrix`].
//!
//! The matmul family and the large elementwise kernels consult the ambient
//! [`colper_runtime`] runtime and split their *output rows/elements* across
//! the worker pool. Each output element is produced by exactly one task
//! using the same operation order as the sequential loop, so parallel
//! results are bit-identical to sequential ones (see `par.rs`).
//!
//! All hot inner loops route through [`crate::kernels`], whose scalar and
//! AVX2 paths are bit-identical — so neither thread count nor SIMD
//! dispatch ever changes a result.

use crate::gemm;
use crate::kernels;
use crate::par::{chunk_len, runtime_for, MIN_PAR_ELEMS, MIN_PAR_MACS};
use crate::{Matrix, ShapeError, TensorError};

/// Runs `row_job(i, out_row)` for every row of `out`, splitting the rows
/// across the ambient runtime when `macs` (multiply-accumulate count) makes
/// it worthwhile. Each row is written by exactly one invocation, so the
/// result is bit-identical to the sequential row loop.
fn for_each_out_row(out: &mut Matrix, macs: usize, row_job: impl Fn(usize, &mut [f32]) + Sync) {
    let (m, n) = out.shape();
    if m == 0 || n == 0 {
        return;
    }
    match runtime_for(macs, MIN_PAR_MACS) {
        None => {
            for i in 0..m {
                row_job(i, out.row_mut(i));
            }
        }
        Some(rt) => {
            let rows_per = chunk_len(m, &rt);
            rt.par_chunks_mut(out.as_mut_slice(), rows_per * n, |c, sub| {
                for (j, out_row) in sub.chunks_mut(n).enumerate() {
                    row_job(c * rows_per + j, out_row);
                }
            });
        }
    }
}

impl Matrix {
    /// Elementwise sum with another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn add(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with("add", other, kernels::add)
    }

    /// Elementwise difference with another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn sub(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with("sub", other, kernels::sub)
    }

    /// Elementwise (Hadamard) product with another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with("mul", other, kernels::mul)
    }

    /// Elementwise quotient with another matrix of the same shape.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the shapes differ.
    pub fn div(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        self.zip_with("div", other, kernels::div)
    }

    /// [`Matrix::add`] writing into a caller-provided matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the operand shapes differ.
    pub fn add_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        self.zip_with_into("add", other, out, kernels::add)
    }

    /// [`Matrix::sub`] writing into a caller-provided matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the operand shapes differ.
    pub fn sub_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        self.zip_with_into("sub", other, out, kernels::sub)
    }

    /// [`Matrix::mul`] writing into a caller-provided matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the operand shapes differ.
    pub fn mul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        self.zip_with_into("mul", other, out, kernels::mul)
    }

    /// [`Matrix::div`] writing into a caller-provided matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the operand shapes differ.
    pub fn div_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        self.zip_with_into("div", other, out, kernels::div)
    }

    fn zip_with(
        &self,
        op: &'static str,
        other: &Matrix,
        k: fn(&[f32], &[f32], &mut [f32]),
    ) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.rows(), self.cols());
        self.zip_with_into(op, other, &mut out, k)?;
        Ok(out)
    }

    /// Shared driver for the elementwise binary ops: shape checks plus the
    /// parallel chunk split, delegating the arithmetic to a dispatched
    /// [`kernels`] kernel. The kernels are elementwise, so the chunk
    /// boundaries cannot affect results; writing into a recycled buffer
    /// is bit-identical to the allocating path.
    fn zip_with_into(
        &self,
        op: &'static str,
        other: &Matrix,
        out: &mut Matrix,
        k: fn(&[f32], &[f32], &mut [f32]),
    ) -> Result<(), TensorError> {
        if self.shape() != other.shape() {
            return Err(ShapeError::new(op, self.shape(), other.shape()).into());
        }
        assert_eq!(out.shape(), self.shape(), "{op}_into: output shape mismatch");
        kernels::count_dispatch(1);
        let (a, b) = (self.as_slice(), other.as_slice());
        if let Some(rt) = runtime_for(self.len(), MIN_PAR_ELEMS) {
            let chunk = chunk_len(a.len(), &rt);
            rt.par_chunks_mut(out.as_mut_slice(), chunk, |c, sub| {
                let base = c * chunk;
                k(&a[base..base + sub.len()], &b[base..base + sub.len()], sub);
            });
            return Ok(());
        }
        k(a, b, out.as_mut_slice());
        Ok(())
    }

    /// Adds `other` into `self` in place.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ; in-place accumulation is an internal
    /// hot path where a shape mismatch is a programming error.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign requires equal shapes");
        kernels::count_dispatch(1);
        if let Some(rt) = runtime_for(self.len(), MIN_PAR_ELEMS) {
            let b = other.as_slice();
            let chunk = chunk_len(b.len(), &rt);
            rt.par_chunks_mut(self.as_mut_slice(), chunk, |c, sub| {
                let base = c * chunk;
                kernels::add_assign(sub, &b[base..base + sub.len()]);
            });
            return;
        }
        kernels::add_assign(self.as_mut_slice(), other.as_slice());
    }

    /// Returns a new matrix with every element multiplied by `s`.
    pub fn scale(&self, s: f32) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), self.cols());
        self.scale_into(s, &mut out);
        out
    }

    /// [`Matrix::scale`] writing into a caller-provided matrix.
    ///
    /// # Panics
    ///
    /// Panics when `out` has a different shape.
    pub fn scale_into(&self, s: f32, out: &mut Matrix) {
        assert_eq!(out.shape(), self.shape(), "scale_into: output shape mismatch");
        kernels::count_dispatch(1);
        let a = self.as_slice();
        if let Some(rt) = runtime_for(self.len(), MIN_PAR_ELEMS) {
            let chunk = chunk_len(a.len(), &rt);
            rt.par_chunks_mut(out.as_mut_slice(), chunk, |c, sub| {
                let base = c * chunk;
                kernels::scale(&a[base..base + sub.len()], s, sub);
            });
            return;
        }
        kernels::scale(a, s, out.as_mut_slice());
    }

    /// Elementwise hyperbolic tangent via the dispatched [`kernels::tanh`]
    /// (a clamp + rational approximation whose scalar and SIMD paths are
    /// bit-identical; accurate to a few ULP against `f32::tanh`).
    pub fn tanh(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), self.cols());
        self.tanh_into(&mut out);
        out
    }

    /// [`Matrix::tanh`] writing into a caller-provided matrix.
    ///
    /// # Panics
    ///
    /// Panics when `out` has a different shape.
    pub fn tanh_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), self.shape(), "tanh_into: output shape mismatch");
        kernels::count_dispatch(1);
        let a = self.as_slice();
        if let Some(rt) = runtime_for(self.len(), MIN_PAR_ELEMS) {
            let chunk = chunk_len(a.len(), &rt);
            rt.par_chunks_mut(out.as_mut_slice(), chunk, |c, sub| {
                let base = c * chunk;
                kernels::tanh(&a[base..base + sub.len()], sub);
            });
            return;
        }
        kernels::tanh(a, out.as_mut_slice());
    }

    /// Returns a new matrix with `s` added to every element.
    pub fn add_scalar(&self, s: f32) -> Matrix {
        self.map(|v| v + s)
    }

    /// Applies `f` to every element, producing a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), self.cols());
        self.map_into(&mut out, f);
        out
    }

    /// [`Matrix::map`] writing into a caller-provided matrix of the same
    /// shape. Same parallel split as the allocating path, so results are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics when `out` has a different shape.
    pub fn map_into(&self, out: &mut Matrix, f: impl Fn(f32) -> f32 + Sync) {
        assert_eq!(out.shape(), self.shape(), "map_into: output shape mismatch");
        let a = self.as_slice();
        if let Some(rt) = runtime_for(self.len(), MIN_PAR_ELEMS) {
            let chunk = chunk_len(a.len(), &rt);
            rt.par_chunks_mut(out.as_mut_slice(), chunk, |c, sub| {
                let base = c * chunk;
                for (off, o) in sub.iter_mut().enumerate() {
                    *o = f(a[base + off]);
                }
            });
            return;
        }
        for (o, &v) in out.as_mut_slice().iter_mut().zip(a) {
            *o = f(v);
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.as_mut_slice() {
            *v = f(*v);
        }
    }

    /// Matrix product `self * other` (`[m,k] x [k,n] -> [m,n]`).
    ///
    /// Uses an i-k-j loop order so the inner loop streams both operand rows,
    /// which is the cache-friendly layout for row-major storage. Large
    /// products split their output rows across the ambient runtime; each row
    /// keeps the sequential accumulation order, so results are bit-identical
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.rows(), other.cols());
        self.matmul_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul`] writing into a caller-provided matrix (which is
    /// zeroed first, so recycled buffers are safe).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.rows()`.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[m, n]`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.cols() != other.rows() {
            return Err(ShapeError::new("matmul", self.shape(), other.shape()).into());
        }
        let (m, k) = self.shape();
        let n = other.cols();
        assert_eq!(out.shape(), (m, n), "matmul_into: output shape mismatch");
        kernels::count_dispatch(m);
        if gemm::use_tiled(m, k, n) {
            gemm::gemm_into(self.as_slice(), other.as_slice(), m, k, n, out.as_mut_slice());
            return Ok(());
        }
        out.as_mut_slice().fill(0.0);
        let b = other.as_slice();
        for_each_out_row(out, m * k * n, |i, out_row| {
            kernels::matmul_row(self.row(i), b, n, out_row);
        });
        Ok(())
    }

    /// Batched matmul over `count` same-shape left operands against one
    /// shared right operand: `outs[i] = batch[i] * other` for every `i`.
    ///
    /// When the batch and shapes clear the tiled-GEMM routing threshold,
    /// the products run as one fused strided GEMM — the shared `other` is
    /// packed once per `k`-block and every cloud replays the identical
    /// band loop against it — otherwise they fall back to a per-cloud
    /// [`Matrix::matmul_into`] loop. Both executions are bit-identical,
    /// so batching is purely a performance decision (counted by the
    /// `gemm.batch.fused` / `gemm.batch.looped` trace counters).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the left operands' shapes differ
    /// from each other or don't match `other.rows()`.
    ///
    /// # Panics
    ///
    /// Panics when `outs.len() != batch.len()` or any `outs[i]` is not
    /// `[m, n]`.
    pub fn matmul_batched_into(
        batch: &[&Matrix],
        other: &Matrix,
        outs: &mut [Matrix],
    ) -> Result<(), TensorError> {
        Matrix::matmul_batched_with(batch.len(), |i| batch[i], other, outs)
    }

    /// [`Matrix::matmul_batched_into`] with the left operands produced by
    /// a closure, for callers whose batch members live in non-contiguous
    /// storage (e.g. compiled tape schedules executing a batched group
    /// in place).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the left operands' shapes differ
    /// from each other or don't match `other.rows()`.
    ///
    /// # Panics
    ///
    /// Panics when `outs.len() != count` or any `outs[i]` is not `[m, n]`.
    pub fn matmul_batched_with<'a>(
        count: usize,
        a_of: impl Fn(usize) -> &'a Matrix,
        other: &Matrix,
        outs: &mut [Matrix],
    ) -> Result<(), TensorError> {
        assert_eq!(outs.len(), count, "matmul_batched: outs length mismatch");
        if count == 0 {
            return Ok(());
        }
        let (m, k) = a_of(0).shape();
        let n = other.cols();
        for (i, out) in outs.iter().enumerate() {
            let ai = a_of(i);
            if ai.shape() != (m, k) || ai.cols() != other.rows() {
                return Err(ShapeError::new("matmul_batched", ai.shape(), other.shape()).into());
            }
            assert_eq!(out.shape(), (m, n), "matmul_batched: output shape mismatch");
        }
        if count >= 2 && gemm::use_tiled(m, k, n) {
            // The per-cloud loop's matmul_into calls credit dispatch
            // themselves; the fused path credits the same total here.
            kernels::count_dispatch(count * m);
            colper_obs::counters::GEMM_BATCH_FUSED.incr();
            gemm::gemm_batched(count, |i| a_of(i).as_slice(), other.as_slice(), m, k, n, outs);
        } else {
            colper_obs::counters::GEMM_BATCH_LOOPED.incr();
            for (i, out) in outs.iter_mut().enumerate() {
                a_of(i).matmul_into(other, out)?;
            }
        }
        Ok(())
    }

    /// Matrix product `self^T * other` (`[k,m]^T x [k,n] -> [m,n]`) without
    /// materializing the transpose.
    ///
    /// The loop nest is output-row (`i`) outermost so rows can be split
    /// across the ambient runtime; every `out[i][j]` still accumulates its
    /// `k` terms in ascending-`k` order, exactly as the previous `k`-outer
    /// formulation did, so results are bit-identical (and thread-count
    /// independent).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.rows() != other.rows()`.
    pub fn matmul_tn(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.cols(), other.cols());
        self.matmul_tn_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_tn`] writing into a caller-provided matrix (which is
    /// zeroed first, so recycled buffers are safe).
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.rows() != other.rows()`.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[m, n]`.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.rows() != other.rows() {
            return Err(ShapeError::new("matmul_tn", self.shape(), other.shape()).into());
        }
        let (k, m) = self.shape();
        let n = other.cols();
        assert_eq!(out.shape(), (m, n), "matmul_tn_into: output shape mismatch");
        out.as_mut_slice().fill(0.0);
        if m == 0 || n == 0 || k == 0 {
            return Ok(());
        }
        kernels::count_dispatch(m);
        // Pack self^T into a pooled panel so the inner kernel reads
        // contiguous rows instead of stride-m columns. Packing happens on
        // the calling thread before the row split, so the panel contents —
        // and therefore the results — are independent of thread count.
        let mut packed = gemm::pack_scratch(m, k);
        self.transpose_into(&mut packed);
        if gemm::use_tiled(m, k, n) {
            gemm::gemm_into(packed.as_slice(), other.as_slice(), m, k, n, out.as_mut_slice());
        } else {
            let b = other.as_slice();
            let packed_ref = &packed;
            for_each_out_row(out, m * k * n, |i, out_row| {
                kernels::matmul_row(packed_ref.row(i), b, n, out_row);
            });
        }
        gemm::pack_recycle(packed);
        Ok(())
    }

    /// Matrix product `self * other^T` (`[m,k] x [n,k]^T -> [m,n]`) without
    /// materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.cols()`.
    pub fn matmul_nt(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.rows(), other.rows());
        self.matmul_nt_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::matmul_nt`] writing into a caller-provided matrix. Every
    /// output element is fully overwritten, so recycled buffers are safe
    /// without pre-zeroing.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when `self.cols() != other.cols()`.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[m, n]`.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.cols() != other.cols() {
            return Err(ShapeError::new("matmul_nt", self.shape(), other.shape()).into());
        }
        let m = self.rows();
        let k = self.cols();
        let n = other.rows();
        assert_eq!(out.shape(), (m, n), "matmul_nt_into: output shape mismatch");
        kernels::count_dispatch(m * n);
        for_each_out_row(out, m * k * n, |i, out_row| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate().take(n) {
                *o = kernels::dot(a_row, other.row(j));
            }
        });
        Ok(())
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols(), self.rows());
        self.transpose_into(&mut out);
        out
    }

    /// [`Matrix::transpose`] writing into a caller-provided `[c, r]`
    /// matrix. Every element is fully overwritten, so recycled (dirty)
    /// buffers are safe. Walks 32x32 blocks so both source reads and
    /// destination writes stay cache-resident.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[cols, rows]`.
    pub fn transpose_into(&self, out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (self.cols(), self.rows()),
            "transpose_into: output shape mismatch"
        );
        const BLOCK: usize = 32;
        let (r, c) = self.shape();
        let src = self.as_slice();
        let dst = out.as_mut_slice();
        for rb in (0..r).step_by(BLOCK) {
            for cb in (0..c).step_by(BLOCK) {
                for i in rb..(rb + BLOCK).min(r) {
                    for j in cb..(cb + BLOCK).min(c) {
                        dst[j * r + i] = src[i * c + j];
                    }
                }
            }
        }
    }

    /// Sum of all elements (dispatched lane-strided reduction; see
    /// [`kernels::sum`]).
    pub fn sum(&self) -> f32 {
        kernels::count_dispatch(1);
        kernels::sum(self.as_slice())
    }

    /// Arithmetic mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Column-wise sums (`[n, c] -> [1, c]`).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        self.sum_rows_into(&mut out);
        out
    }

    /// [`Matrix::sum_rows`] writing into a caller-provided `[1, c]` matrix
    /// (which is zeroed first, so recycled buffers are safe).
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[1, c]`.
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (1, self.cols()), "sum_rows_into: output shape mismatch");
        kernels::count_dispatch(self.rows());
        out.as_mut_slice().fill(0.0);
        for row in self.iter_rows() {
            kernels::add_assign(out.as_mut_slice(), row);
        }
    }

    /// Column-wise means (`[n, c] -> [1, c]`); zeros for an empty matrix.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols());
        self.mean_rows_into(&mut out);
        out
    }

    /// [`Matrix::mean_rows`] writing into a caller-provided `[1, c]` matrix.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[1, c]`.
    pub fn mean_rows_into(&self, out: &mut Matrix) {
        if self.rows() == 0 {
            assert_eq!(out.shape(), (1, self.cols()), "mean_rows_into: output shape mismatch");
            out.as_mut_slice().fill(0.0);
            return;
        }
        self.sum_rows_into(out);
        kernels::count_dispatch(1);
        kernels::scale_assign(out.as_mut_slice(), 1.0 / self.rows() as f32);
    }

    /// Row-wise sums (`[n, c] -> [n, 1]`).
    pub fn sum_cols(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows(), 1);
        self.sum_cols_into(&mut out);
        out
    }

    /// [`Matrix::sum_cols`] writing into a caller-provided `[n, 1]` matrix.
    /// Every element is fully overwritten.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[n, 1]`.
    pub fn sum_cols_into(&self, out: &mut Matrix) {
        assert_eq!(out.shape(), (self.rows(), 1), "sum_cols_into: output shape mismatch");
        kernels::count_dispatch(self.rows());
        for (o, r) in out.as_mut_slice().iter_mut().zip(self.iter_rows()) {
            *o = kernels::sum(r);
        }
    }

    /// Index of the maximum element in each row.
    ///
    /// Ties resolve to the smallest index; an empty row set yields an empty
    /// vector.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.argmax_rows_into(&mut out);
        out
    }

    /// [`Matrix::argmax_rows`] writing into a caller-provided vector, which
    /// is cleared first (its capacity is reused).
    pub fn argmax_rows_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.iter_rows().map(|row| {
            row.iter()
                .enumerate()
                .fold(
                    (0usize, f32::NEG_INFINITY),
                    |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    },
                )
                .0
        }));
    }

    /// The largest element, or `None` for an empty matrix.
    pub fn max(&self) -> Option<f32> {
        self.as_slice().iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.max(v)),
        })
    }

    /// The smallest element, or `None` for an empty matrix.
    pub fn min(&self) -> Option<f32> {
        self.as_slice().iter().copied().fold(None, |acc, v| match acc {
            None => Some(v),
            Some(a) => Some(a.min(v)),
        })
    }

    /// The squared Frobenius norm (dispatched lane-strided fused sum of
    /// squares; see [`kernels::sum_sq`]).
    pub fn frobenius_sq(&self) -> f32 {
        kernels::count_dispatch(1);
        kernels::sum_sq(self.as_slice())
    }

    /// The Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.frobenius_sq().sqrt()
    }

    /// Clamps every element to `[lo, hi]`, producing a new matrix.
    pub fn clamp(&self, lo: f32, hi: f32) -> Matrix {
        self.map(|v| v.clamp(lo, hi))
    }

    /// Stacks `others` below `self`, producing a `[sum(rows), c]` matrix.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when any operand has a different column
    /// count.
    pub fn vstack(&self, others: &[&Matrix]) -> Result<Matrix, TensorError> {
        let total_rows = self.rows() + others.iter().map(|m| m.rows()).sum::<usize>();
        let mut data = Vec::with_capacity(total_rows * self.cols());
        data.extend_from_slice(self.as_slice());
        for m in others {
            if m.cols() != self.cols() {
                return Err(ShapeError::new("vstack", self.shape(), m.shape()).into());
            }
            data.extend_from_slice(m.as_slice());
        }
        Matrix::from_vec(total_rows, self.cols(), data)
    }

    /// Concatenates `other` to the right of `self`, producing `[n, c1+c2]`.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the row counts differ.
    pub fn hstack(&self, other: &Matrix) -> Result<Matrix, TensorError> {
        let mut out = Matrix::zeros(self.rows(), self.cols() + other.cols());
        self.hstack_into(other, &mut out)?;
        Ok(out)
    }

    /// [`Matrix::hstack`] writing into a caller-provided `[n, c1+c2]`
    /// matrix. Every element is fully overwritten.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] when the row counts differ.
    ///
    /// # Panics
    ///
    /// Panics when `out` is not `[n, c1+c2]`.
    pub fn hstack_into(&self, other: &Matrix, out: &mut Matrix) -> Result<(), TensorError> {
        if self.rows() != other.rows() {
            return Err(ShapeError::new("hstack", self.shape(), other.shape()).into());
        }
        assert_eq!(
            out.shape(),
            (self.rows(), self.cols() + other.cols()),
            "hstack_into: output shape mismatch"
        );
        for r in 0..self.rows() {
            let dst = out.row_mut(r);
            dst[..self.cols()].copy_from_slice(self.row(r));
            dst[self.cols()..].copy_from_slice(other.row(r));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: &[&[f32]]) -> Matrix {
        Matrix::from_rows(rows).unwrap()
    }

    #[test]
    fn add_sub_mul_div() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[4.0, 3.0], &[2.0, 1.0]]);
        assert_eq!(a.add(&b).unwrap().as_slice(), &[5.0, 5.0, 5.0, 5.0]);
        assert_eq!(a.sub(&b).unwrap().as_slice(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().as_slice(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).unwrap().as_slice(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
    }

    #[test]
    fn elementwise_shape_mismatch_errors() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn matmul_known_product() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = m(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let b = m(&[&[1.0, 0.5], &[2.0, 1.5], &[3.0, 2.5]]);
        let direct = a.transpose().matmul(&b).unwrap();
        let fused = a.matmul_tn(&b).unwrap();
        assert!(direct.max_abs_diff(&fused) < 1e-6);
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let b = m(&[&[1.0, 0.0, 1.0], &[0.5, 0.5, 0.5]]);
        let direct = a.matmul(&b.transpose()).unwrap();
        let fused = a.matmul_nt(&b).unwrap();
        assert!(direct.max_abs_diff(&fused) < 1e-6);
    }

    #[test]
    fn transpose_round_trip() {
        let a = m(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn reductions() {
        let a = m(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_rows().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.mean_rows().as_slice(), &[2.0, 3.0]);
        assert_eq!(a.sum_cols().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.max(), Some(4.0));
        assert_eq!(a.min(), Some(1.0));
    }

    #[test]
    fn argmax_rows_breaks_ties_low() {
        let a = m(&[&[1.0, 3.0, 3.0], &[5.0, 2.0, 1.0]]);
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn frobenius_norm() {
        let a = m(&[&[3.0, 4.0]]);
        assert_eq!(a.frobenius_sq(), 25.0);
        assert_eq!(a.frobenius(), 5.0);
    }

    #[test]
    fn clamp_bounds_values() {
        let a = m(&[&[-2.0, 0.5, 2.0]]);
        assert_eq!(a.clamp(0.0, 1.0).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn stack_operations() {
        let a = m(&[&[1.0, 2.0]]);
        let b = m(&[&[3.0, 4.0]]);
        let v = a.vstack(&[&b]).unwrap();
        assert_eq!(v.shape(), (2, 2));
        assert_eq!(v.row(1), &[3.0, 4.0]);
        let h = a.hstack(&b).unwrap();
        assert_eq!(h.shape(), (1, 4));
        assert_eq!(h.row(0), &[1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn stack_shape_errors() {
        let a = Matrix::zeros(1, 2);
        let b = Matrix::zeros(1, 3);
        assert!(a.vstack(&[&b]).is_err());
        let c = Matrix::zeros(2, 2);
        assert!(a.hstack(&c).is_err());
    }

    #[test]
    fn scale_and_map() {
        let a = m(&[&[1.0, -2.0]]);
        assert_eq!(a.scale(2.0).as_slice(), &[2.0, -4.0]);
        assert_eq!(a.add_scalar(1.0).as_slice(), &[2.0, -1.0]);
        assert_eq!(a.map(f32::abs).as_slice(), &[1.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|v| v * v);
        assert_eq!(b.as_slice(), &[1.0, 4.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Matrix::ones(2, 2);
        let b = Matrix::filled(2, 2, 0.5);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[1.5, 1.5, 1.5, 1.5]);
    }

    #[test]
    fn parallel_kernels_are_bit_identical_to_sequential() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        // Big enough to cross every parallel threshold.
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::from_fn(96, 80, |_, _| rng.gen_range(-1.0f32..1.0));
        let b = Matrix::from_fn(80, 96, |_, _| rng.gen_range(-1.0f32..1.0));
        let seq = (
            a.matmul(&b).unwrap(),
            a.matmul_tn(&a).unwrap(),
            a.matmul_nt(&a).unwrap(),
            a.add(&a).unwrap(),
            a.map(|v| v * 1.7 + 0.3),
            a.select_rows(&vec![5usize; 500]),
        );
        let rt = colper_runtime::Runtime::new(4);
        let par = rt.install(|| {
            (
                a.matmul(&b).unwrap(),
                a.matmul_tn(&a).unwrap(),
                a.matmul_nt(&a).unwrap(),
                a.add(&a).unwrap(),
                a.map(|v| v * 1.7 + 0.3),
                a.select_rows(&vec![5usize; 500]),
            )
        });
        // PartialEq on Matrix is exact f32 equality, i.e. bit identity for
        // non-NaN data.
        assert_eq!(seq, par);
    }

    #[test]
    fn into_variants_match_allocating_variants() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::from_fn(17, 9, |_, _| rng.gen_range(-2.0f32..2.0));
        let b = Matrix::from_fn(17, 9, |_, _| rng.gen_range(-2.0f32..2.0));
        let c = Matrix::from_fn(9, 6, |_, _| rng.gen_range(-2.0f32..2.0));

        // Deliberately dirty recycled buffers: every `_into` kernel must
        // fully define its output.
        let mut out = Matrix::filled(17, 9, f32::NAN);
        a.add_into(&b, &mut out).unwrap();
        assert_eq!(out, a.add(&b).unwrap());
        a.sub_into(&b, &mut out).unwrap();
        assert_eq!(out, a.sub(&b).unwrap());
        a.mul_into(&b, &mut out).unwrap();
        assert_eq!(out, a.mul(&b).unwrap());
        a.div_into(&b, &mut out).unwrap();
        assert_eq!(out, a.div(&b).unwrap());
        a.map_into(&mut out, |v| v * 1.7 + 0.3);
        assert_eq!(out, a.map(|v| v * 1.7 + 0.3));
        a.scale_into(-0.35, &mut out);
        assert_eq!(out, a.scale(-0.35));
        a.tanh_into(&mut out);
        assert_eq!(out, a.tanh());

        let mut tr = Matrix::filled(9, 17, f32::NAN);
        a.transpose_into(&mut tr);
        assert_eq!(tr, a.transpose());

        let mut mm = Matrix::filled(17, 6, f32::NAN);
        a.matmul_into(&c, &mut mm).unwrap();
        assert_eq!(mm, a.matmul(&c).unwrap());
        let mut tn = Matrix::filled(9, 9, f32::NAN);
        a.matmul_tn_into(&b, &mut tn).unwrap();
        assert_eq!(tn, a.matmul_tn(&b).unwrap());
        let mut nt = Matrix::filled(17, 17, f32::NAN);
        a.matmul_nt_into(&b, &mut nt).unwrap();
        assert_eq!(nt, a.matmul_nt(&b).unwrap());

        let mut sr = Matrix::filled(1, 9, f32::NAN);
        a.sum_rows_into(&mut sr);
        assert_eq!(sr, a.sum_rows());
        a.mean_rows_into(&mut sr);
        assert_eq!(sr, a.mean_rows());
        let mut sc = Matrix::filled(17, 1, f32::NAN);
        a.sum_cols_into(&mut sc);
        assert_eq!(sc, a.sum_cols());

        let mut hs = Matrix::filled(17, 18, f32::NAN);
        a.hstack_into(&b, &mut hs).unwrap();
        assert_eq!(hs, a.hstack(&b).unwrap());

        let mut idx = vec![99usize; 3];
        a.argmax_rows_into(&mut idx);
        assert_eq!(idx, a.argmax_rows());
    }

    #[test]
    #[should_panic(expected = "output shape mismatch")]
    fn into_variant_rejects_wrong_output_shape() {
        let a = Matrix::zeros(2, 2);
        let mut out = Matrix::zeros(3, 3);
        let _ = a.add_into(&a, &mut out);
    }

    #[test]
    fn into_variant_propagates_operand_shape_error() {
        let a = Matrix::zeros(2, 2);
        let b = Matrix::zeros(2, 3);
        let mut out = Matrix::zeros(2, 2);
        assert!(a.add_into(&b, &mut out).is_err());
        let mut mm = Matrix::zeros(2, 3);
        assert!(a.matmul_into(&b, &mut mm).is_ok());
        assert!(b.matmul_into(&a, &mut mm).is_err());
    }

    #[test]
    fn empty_matrix_reductions() {
        let e = Matrix::zeros(0, 3);
        assert_eq!(e.sum(), 0.0);
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.max(), None);
        assert_eq!(e.mean_rows().shape(), (1, 3));
    }
}
