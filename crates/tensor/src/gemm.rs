//! Register-blocked, cache-tiled GEMM driver with pooled packing panels
//! and strided batch-of-clouds execution.
//!
//! The row-at-a-time kernel ([`crate::kernels::matmul_row`]) streams the
//! full `B` operand from memory once per output row, which is optimal
//! while `B` fits in L1/L2 but collapses once it does not. This module
//! adds the classic three-level blocking on top of the same arithmetic:
//!
//! * **`KC` blocking** — the `k` dimension is processed in blocks of
//!   [`KC`]; each output element's partial sum is stored to `C` between
//!   blocks and reloaded into the accumulator, so the per-element chain
//!   of fused multiply-adds is *the same ascending-`k` chain* the row
//!   kernel computes. That single invariant makes the tiled path
//!   bit-identical to the row kernel, the scalar reference, and every
//!   micro-tile geometry.
//! * **Packing** — within a block, `A` and `B` are repacked into
//!   k-major panels (`A`: row-minor stride `MR`; `B`: column-minor
//!   stride `NR`, both zero-padded to the tile edge) so the micro-kernel
//!   reads both operands contiguously. Panels come from a thread-local
//!   [`BufferPool`] with dirty hand-back, so the steady-state 0-alloc
//!   budget of the attack loop holds.
//! * **Micro-tiles** — the inner kernel computes an `MR x NR` register
//!   tile per call ([`crate::kernels::gemm_tile`]); the geometry is per
//!   instruction set (6x16 AVX2, 12x32 AVX-512, scalar twin in the AVX2
//!   geometry).
//!
//! Parallelism splits the output into fixed [`MC`]-row bands (boundaries
//! depend only on the shape, never on thread count) via the shared
//! work-stealing runtime; each band owns its rows exclusively, so
//! results are bit-identical at any thread count.
//!
//! `gemm_batched` lifts the same driver over `N` same-shape clouds:
//! `B` is packed **once** per `KC` block and every cloud replays the
//! identical per-cloud band loop against it, so packing and dispatch
//! amortize across the batch while each cloud's result stays bit-equal
//! to its standalone matmul.

use crate::kernels::{self, GemmIsa};
use crate::par::{runtime_for, MIN_PAR_MACS};
use crate::{BufferPool, Matrix};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU8, Ordering};

/// `k`-dimension block: one packed `A` band (`MC x KC`) plus the live
/// `C` tile stay cache-resident while a `B` panel streams.
pub const KC: usize = 256;

/// Output row band processed by one parallel task. Divisible by every
/// micro-tile `MR` (6 and 12), so band-local tile boundaries line up
/// identically on all instruction-set legs.
pub const MC: usize = 96;

/// `Auto` routing: smallest `m`/`n` for which the tiled path may win.
pub const TILED_MIN_DIM: usize = 16;

/// `Auto` routing: smallest `k * n` (the `B` footprint in elements) for
/// which the tiled path may win; below this the row kernel keeps `B`
/// L1/L2-resident and is already near peak.
pub const TILED_MIN_KN: usize = 1 << 15;

const GM_UNINIT: u8 = 0;
const GM_ROW: u8 = 1;
const GM_AUTO: u8 = 2;
const GM_TILED: u8 = 3;

static GEMM_MODE: AtomicU8 = AtomicU8::new(GM_UNINIT);

/// How matmuls route between the row kernel and the tiled GEMM.
///
/// Every choice is bit-identical to every other — the paths share one
/// per-element accumulation order — so the mode only moves performance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmMode {
    /// Always the row-at-a-time kernel (the pre-tiling behaviour).
    Row,
    /// Shape-based routing: tiled when `m >= 16 && n >= 16` and the `B`
    /// footprint `k * n` exceeds [`TILED_MIN_KN`], row kernel otherwise.
    Auto,
    /// Always the tiled GEMM (tests and benches; small shapes pay the
    /// packing overhead).
    Tiled,
}

fn detect_mode() -> u8 {
    match std::env::var("COLPER_GEMM") {
        Ok(v) => {
            let v = v.to_ascii_lowercase();
            if v == "row" || v == "off" || v == "0" {
                GM_ROW
            } else if v == "tiled" {
                GM_TILED
            } else {
                GM_AUTO
            }
        }
        Err(_) => GM_AUTO,
    }
}

/// The active GEMM routing mode. The first call probes `COLPER_GEMM`
/// (`row`/`off`/`0` pin the row kernel, `tiled` forces the tiled path);
/// afterwards a relaxed atomic load.
pub fn gemm_mode() -> GemmMode {
    let m = GEMM_MODE.load(Ordering::Relaxed);
    let m = if m == GM_UNINIT {
        let d = detect_mode();
        GEMM_MODE.store(d, Ordering::Relaxed);
        d
    } else {
        m
    };
    match m {
        GM_ROW => GemmMode::Row,
        GM_TILED => GemmMode::Tiled,
        _ => GemmMode::Auto,
    }
}

/// Overrides the `COLPER_GEMM` probe. Safe to flip at any time from any
/// thread: the paths are bit-identical, so only performance changes.
pub fn set_gemm_mode(mode: GemmMode) {
    let m = match mode {
        GemmMode::Row => GM_ROW,
        GemmMode::Auto => GM_AUTO,
        GemmMode::Tiled => GM_TILED,
    };
    GEMM_MODE.store(m, Ordering::Relaxed);
}

/// Whether an `[m,k] x [k,n]` product routes to the tiled driver under
/// the active [`gemm_mode`].
pub(crate) fn use_tiled(m: usize, k: usize, n: usize) -> bool {
    match gemm_mode() {
        GemmMode::Row => false,
        GemmMode::Tiled => true,
        GemmMode::Auto => m >= TILED_MIN_DIM && n >= TILED_MIN_DIM && k * n >= TILED_MIN_KN,
    }
}

thread_local! {
    /// Per-thread scratch for packing panels (GEMM `A`/`B` panels and the
    /// matmul-transposed left operand). Thread-local so the hot loop
    /// stays allocation-free after warmup without threading a pool handle
    /// through every matmul call site; per-worker warmup is a bounded
    /// one-time cost because the runtime's workers are persistent.
    static PACK_POOL: RefCell<BufferPool> = RefCell::new(BufferPool::new());
}

/// A `rows x cols` panel with unspecified contents from the calling
/// thread's pack pool, crediting `gemm.pack.hit` / `gemm.pack.miss`.
pub(crate) fn pack_scratch(rows: usize, cols: usize) -> Matrix {
    PACK_POOL.with(|p| {
        let mut p = p.borrow_mut();
        let before = p.stats();
        let m = p.scratch(rows, cols);
        let after = p.stats();
        if after.0 > before.0 {
            colper_obs::counters::GEMM_PACK_HIT.incr();
        } else if after.1 > before.1 {
            colper_obs::counters::GEMM_PACK_MISS.incr();
        }
        m
    })
}

/// Hands a panel back to the calling thread's pack pool (dirty).
pub(crate) fn pack_recycle(m: Matrix) {
    PACK_POOL.with(|p| p.borrow_mut().recycle(m));
}

/// Packs the `kc` wide `k`-block of `B` starting at `pc` into column
/// bands of `NR`: band `jb` holds `panel[jb*nr*kc + kk*nr + j] =
/// b[(pc+kk)*n + jb*nr + j]`, zero-padded past column `n`.
fn pack_b_block(b: &[f32], n: usize, pc: usize, kc: usize, nr: usize, panel: &mut [f32]) {
    let n_bands = n.div_ceil(nr);
    for jb in 0..n_bands {
        let base = jb * nr * kc;
        let col0 = jb * nr;
        let width = nr.min(n - col0);
        for kk in 0..kc {
            let src = (pc + kk) * n + col0;
            let dst = &mut panel[base + kk * nr..base + kk * nr + nr];
            dst[..width].copy_from_slice(&b[src..src + width]);
            dst[width..].fill(0.0);
        }
    }
}

/// Packs one `MC`-band of `A` rows (`row0..row0+band_rows`, `k`-block at
/// `pc`) into row tiles of `MR`: tile `t` holds `panel[t*mr*kc + kk*mr +
/// r] = a[(row0+t*mr+r)*k + pc + kk]`, zero-padded past the band's rows.
#[allow(clippy::too_many_arguments)]
fn pack_a_band(
    a: &[f32],
    k: usize,
    row0: usize,
    band_rows: usize,
    pc: usize,
    kc: usize,
    mr: usize,
    panel: &mut [f32],
) {
    let tiles = band_rows.div_ceil(mr);
    for t in 0..tiles {
        let base = t * mr * kc;
        let rows = mr.min(band_rows - t * mr);
        for kk in 0..kc {
            let dst = &mut panel[base + kk * mr..base + kk * mr + mr];
            for (r, d) in dst.iter_mut().enumerate() {
                *d = if r < rows { a[(row0 + t * mr + r) * k + pc + kk] } else { 0.0 };
            }
        }
    }
}

/// Credits the deterministic micro-tile invocation count for `clouds`
/// same-shape products to `gemm.tile.tasks` (computed arithmetically, so
/// the total is independent of thread count and chunking).
fn count_tile_tasks(clouds: usize, m: usize, k: usize, n: usize, mr: usize, nr: usize) {
    let tiles = clouds * m.div_ceil(mr) * n.div_ceil(nr) * k.div_ceil(KC);
    colper_obs::counters::GEMM_TILE_TASKS.add(tiles as u64);
}

/// Runs the fixed-boundary `MC`-band loop of one `k`-block over `out`,
/// splitting bands across the ambient runtime when the block's work
/// clears the parallel threshold. Each band packs its own `A` panel from
/// the per-thread pack pool and owns its output rows exclusively, so the
/// result is bit-identical to the sequential band loop.
#[allow(clippy::too_many_arguments)]
fn run_bands(
    a: &[f32],
    m: usize,
    k: usize,
    n: usize,
    pc: usize,
    kc: usize,
    init: bool,
    bpanel: &[f32],
    isa: GemmIsa,
    out: &mut [f32],
) {
    let (mr, nr) = isa.micro_tile();
    let n_bands = n.div_ceil(nr);
    let band_job = |band: usize, sub: &mut [f32]| {
        let row0 = band * MC;
        let band_rows = sub.len() / n;
        let tiles = band_rows.div_ceil(mr);
        let mut apanel = pack_scratch(1, tiles * mr * kc);
        pack_a_band(a, k, row0, band_rows, pc, kc, mr, apanel.as_mut_slice());
        let ap = apanel.as_slice();
        for jb in 0..n_bands {
            let cols = nr.min(n - jb * nr);
            for t in 0..tiles {
                let rows = mr.min(band_rows - t * mr);
                kernels::gemm_tile(
                    isa,
                    &ap[t * mr * kc..],
                    &bpanel[jb * nr * kc..],
                    kc,
                    rows,
                    cols,
                    init,
                    &mut sub[t * mr * n + jb * nr..],
                    n,
                );
            }
        }
        pack_recycle(apanel);
    };
    match runtime_for(m * kc * n, MIN_PAR_MACS) {
        None => {
            for (band, sub) in out.chunks_mut(MC * n).enumerate() {
                band_job(band, sub);
            }
        }
        Some(rt) => rt.par_chunks_mut(out, MC * n, band_job),
    }
}

/// Tiled `[m,k] x [k,n] -> [m,n]` into `out` (fully overwritten; `init`
/// semantics make pre-zeroing unnecessary). Bit-identical to the row
/// kernel path for every input, SIMD leg and thread count.
pub(crate) fn gemm_into(a: &[f32], b: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
    debug_assert!(a.len() >= m * k && b.len() >= k * n && out.len() == m * n);
    if m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        out.fill(0.0);
        return;
    }
    let isa = kernels::gemm_isa();
    let (mr, nr) = isa.micro_tile();
    count_tile_tasks(1, m, k, n, mr, nr);
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let mut bpanel = pack_scratch(1, n.div_ceil(nr) * nr * kc);
        pack_b_block(b, n, pc, kc, nr, bpanel.as_mut_slice());
        run_bands(a, m, k, n, pc, kc, pc == 0, bpanel.as_slice(), isa, out);
        pack_recycle(bpanel);
        pc += kc;
    }
}

/// Strided batch-of-clouds GEMM: `count` same-shape `[m,k]` left
/// operands (produced by `a_of`) against one shared `[k,n]` right
/// operand, into `outs`. `B` is packed once per `k`-block and every
/// cloud replays the identical per-cloud band loop, so each `outs[i]` is
/// bit-identical to `a_of(i).matmul(b)` while packing and dispatch
/// amortize across the batch.
pub(crate) fn gemm_batched<'a>(
    count: usize,
    a_of: impl Fn(usize) -> &'a [f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    outs: &mut [Matrix],
) {
    debug_assert!(outs.len() == count);
    if count == 0 || m == 0 || n == 0 {
        return;
    }
    if k == 0 {
        for o in outs.iter_mut() {
            o.as_mut_slice().fill(0.0);
        }
        return;
    }
    let isa = kernels::gemm_isa();
    let (mr, nr) = isa.micro_tile();
    count_tile_tasks(count, m, k, n, mr, nr);
    let mut pc = 0;
    while pc < k {
        let kc = KC.min(k - pc);
        let mut bpanel = pack_scratch(1, n.div_ceil(nr) * nr * kc);
        pack_b_block(b, n, pc, kc, nr, bpanel.as_mut_slice());
        for (i, out) in outs.iter_mut().enumerate() {
            run_bands(
                a_of(i),
                m,
                k,
                n,
                pc,
                kc,
                pc == 0,
                bpanel.as_slice(),
                isa,
                out.as_mut_slice(),
            );
        }
        pack_recycle(bpanel);
        pc += kc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_override_round_trips() {
        let was = gemm_mode();
        for mode in [GemmMode::Row, GemmMode::Tiled, GemmMode::Auto] {
            set_gemm_mode(mode);
            assert_eq!(gemm_mode(), mode);
        }
        set_gemm_mode(was);
    }

    #[test]
    fn auto_routing_thresholds() {
        let was = gemm_mode();
        set_gemm_mode(GemmMode::Auto);
        assert!(use_tiled(256, 256, 256));
        assert!(!use_tiled(8, 256, 256), "skinny m stays on the row kernel");
        assert!(!use_tiled(256, 256, 8), "skinny n stays on the row kernel");
        assert!(!use_tiled(96, 64, 64), "L1-resident B stays on the row kernel");
        set_gemm_mode(GemmMode::Row);
        assert!(!use_tiled(256, 256, 256));
        set_gemm_mode(GemmMode::Tiled);
        assert!(use_tiled(3, 3, 3));
        set_gemm_mode(was);
    }

    #[test]
    fn packing_layouts_zero_pad_edges() {
        // B: 2x5 with nr=4 -> 2 bands of 4 cols x kc=2.
        let b: Vec<f32> = (1..=10).map(|v| v as f32).collect();
        let mut panel = vec![f32::NAN; 2 * 4 * 2];
        pack_b_block(&b, 5, 0, 2, 4, &mut panel);
        assert_eq!(
            panel,
            vec![
                1.0, 2.0, 3.0, 4.0, 6.0, 7.0, 8.0, 9.0, // band 0, kk=0..2
                5.0, 0.0, 0.0, 0.0, 10.0, 0.0, 0.0, 0.0, // band 1, zero-padded
            ]
        );
        // A: 3 rows, k=2, mr=2 -> 2 tiles, last row-padded.
        let a: Vec<f32> = (1..=6).map(|v| v as f32).collect();
        let mut panel = vec![f32::NAN; 2 * 2 * 2];
        pack_a_band(&a, 2, 0, 3, 0, 2, 2, &mut panel);
        assert_eq!(panel, vec![1.0, 3.0, 2.0, 4.0, 5.0, 0.0, 6.0, 0.0]);
    }
}
