//! Pinned-order scalar reference kernels.
//!
//! Every kernel in this module is the *semantic definition* of the
//! corresponding dispatched kernel in [`super`]: the AVX2 implementations
//! must produce bit-identical results for every input, including NaN and
//! signed zero. Two rules make that possible:
//!
//! 1. **Elementwise and axpy-family kernels** perform an identical
//!    straight-line sequence of correctly-rounded IEEE-754 operations per
//!    output element (`+`, `-`, `*`, `/` and [`f32::mul_add`], which is the
//!    correctly-rounded fused multiply-add, matching `vfmadd*ps`).
//! 2. **Reduction kernels** accumulate into eight lane-strided partial sums
//!    (element `i` goes to lane `i % 8`, ascending `i` within each lane) and
//!    combine them with the fixed tree [`combine`]. An AVX2 `ymm`
//!    accumulator performs exactly the per-lane operation sequence, so
//!    storing it to memory and applying the same tree reproduces the scalar
//!    result bit for bit.
//!
//! These functions are public so property tests (and sceptical users) can
//! compare them directly against whatever `super`'s runtime dispatch picks.

/// Number of strided partial sums used by every reduction kernel. Equal to
/// the AVX2 `f32` vector width so one `ymm` register holds all lanes.
pub const LANES: usize = 8;

/// Combines eight lane partials in the fixed order shared by the scalar and
/// SIMD reductions: `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`.
#[inline]
pub fn combine(l: &[f32; LANES]) -> f32 {
    ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]))
}

/// `out[i] = a[i] + b[i]`.
pub fn add(a: &[f32], b: &[f32], out: &mut [f32]) {
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x + y;
    }
}

/// `out[i] = a[i] - b[i]`.
pub fn sub(a: &[f32], b: &[f32], out: &mut [f32]) {
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x - y;
    }
}

/// `out[i] = a[i] * b[i]`.
pub fn mul(a: &[f32], b: &[f32], out: &mut [f32]) {
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x * y;
    }
}

/// `out[i] = a[i] / b[i]`.
pub fn div(a: &[f32], b: &[f32], out: &mut [f32]) {
    for (o, (&x, &y)) in out.iter_mut().zip(a.iter().zip(b)) {
        *o = x / y;
    }
}

/// `dst[i] += src[i]`.
pub fn add_assign(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

/// `dst[i] -= src[i]`.
pub fn sub_assign(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d -= s;
    }
}

/// `dst[i] *= src[i]`.
pub fn mul_assign(dst: &mut [f32], src: &[f32]) {
    for (d, &s) in dst.iter_mut().zip(src) {
        *d *= s;
    }
}

/// `dst[i] = fma(alpha, x[i], dst[i])` — fused scaled accumulation.
pub fn axpy(dst: &mut [f32], alpha: f32, x: &[f32]) {
    for (d, &v) in dst.iter_mut().zip(x) {
        *d = alpha.mul_add(v, *d);
    }
}

/// `dst[i] = fma(a[i], b[i], dst[i])` — fused product accumulation.
pub fn add_prod_assign(dst: &mut [f32], a: &[f32], b: &[f32]) {
    for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
        *d = x.mul_add(y, *d);
    }
}

/// `dst[i] = fma(-a[i], b[i], dst[i])` — fused product subtraction.
pub fn sub_prod_assign(dst: &mut [f32], a: &[f32], b: &[f32]) {
    for (d, (&x, &y)) in dst.iter_mut().zip(a.iter().zip(b)) {
        *d = (-x).mul_add(y, *d);
    }
}

/// `out[i] = fma(a[i], b[i], c[i])`.
pub fn mul_add(a: &[f32], b: &[f32], c: &[f32], out: &mut [f32]) {
    for (o, ((&x, &y), &z)) in out.iter_mut().zip(a.iter().zip(b).zip(c)) {
        *o = x.mul_add(y, z);
    }
}

/// `out[i] = a[i] * s`.
pub fn scale(a: &[f32], s: f32, out: &mut [f32]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = x * s;
    }
}

/// `dst[i] *= s`.
pub fn scale_assign(dst: &mut [f32], s: f32) {
    for d in dst.iter_mut() {
        *d *= s;
    }
}

/// Sum of all elements via eight lane-strided partials and [`combine`].
pub fn sum(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut chunks = a.chunks_exact(LANES);
    for ch in &mut chunks {
        for (l, &v) in acc.iter_mut().zip(ch) {
            *l += v;
        }
    }
    for (l, &v) in acc.iter_mut().zip(chunks.remainder()) {
        *l += v;
    }
    combine(&acc)
}

/// Dot product via eight lane-strided fused partials and [`combine`].
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ca = a.chunks_exact(LANES);
    let mut cb = b.chunks_exact(LANES);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for (l, (&xv, &yv)) in acc.iter_mut().zip(x.iter().zip(y)) {
            *l = xv.mul_add(yv, *l);
        }
    }
    for (l, (&xv, &yv)) in acc.iter_mut().zip(ca.remainder().iter().zip(cb.remainder())) {
        *l = xv.mul_add(yv, *l);
    }
    combine(&acc)
}

/// Sum of squares via eight lane-strided fused partials and [`combine`].
pub fn sum_sq(a: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut chunks = a.chunks_exact(LANES);
    for ch in &mut chunks {
        for (l, &v) in acc.iter_mut().zip(ch) {
            *l = v.mul_add(v, *l);
        }
    }
    for (l, &v) in acc.iter_mut().zip(chunks.remainder()) {
        *l = v.mul_add(v, *l);
    }
    combine(&acc)
}

/// The accumulation primitive every matmul-family kernel reduces to: one
/// output element's ascending-`k` chain of fused multiply-adds,
/// `init -> fma(a[0*sa], b[0*sb], init) -> fma(a[1*sa], b[1*sb], ..) -> ..`
/// for `len` steps with strided operand walks.
///
/// The row kernels call it with `sa = 1, sb = n` (a row against a column
/// of `b`); the tiled GEMM path calls it with the packed-panel strides
/// (`sa = MR, sb = NR`). Because a chain's order depends only on `k`
/// order — never on how elements are grouped into rows, tiles or vector
/// lanes — every caller produces bit-identical results for the same
/// logical element.
#[inline]
pub fn fma_dot_chain(a: &[f32], sa: usize, b: &[f32], sb: usize, len: usize, init: f32) -> f32 {
    let mut acc = init;
    for kk in 0..len {
        acc = a[kk * sa].mul_add(b[kk * sb], acc);
    }
    acc
}

/// One output row of a row-major matrix product:
/// `out_row[j] += sum_k a_row[k] * b[k*n + j]`, accumulated as an
/// ascending-`k` chain of fused multiply-adds per output element.
///
/// `b` is the full `k x n` row-major right-hand operand. Both matmul and
/// matmul-transposed route through this kernel (the latter after packing
/// its left operand), so every product shares one accumulation order.
///
/// Columns up to the last multiple of [`LANES`] run a `k`-outer loop (the
/// vector-friendly order); the ragged tail finishes element-wise through
/// [`fma_dot_chain`] — the same helper the AVX2 twin's tail uses, so the
/// tail logic lives in exactly one place. Per element both loops are the
/// same ascending-`k` chain, so the split never changes a result.
pub fn matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    debug_assert_eq!(a_row.len() * n, b.len());
    if a_row.is_empty() {
        return;
    }
    let n8 = n - n % LANES;
    for (kk, &a) in a_row.iter().enumerate() {
        let b_row = &b[kk * n..kk * n + n8];
        for (o, &bv) in out_row[..n8].iter_mut().zip(b_row) {
            *o = a.mul_add(bv, *o);
        }
    }
    for (j, o) in out_row.iter_mut().enumerate().take(n).skip(n8) {
        *o = fma_dot_chain(a_row, 1, &b[j..], n, a_row.len(), *o);
    }
}

/// Pinned-order reference for one GEMM micro-tile: continues (or, when
/// `init` is set, starts at zero) the per-element ascending-`k` chain for
/// the `rows x cols` in-bounds corner of an `mr x nr` tile, reading the
/// packed panels `ap` (k-major, row-minor, stride `mr`) and `bp` (k-major,
/// column-minor, stride `nr`).
///
/// The SIMD twins compute the full padded `mr x nr` tile and store only
/// the in-bounds corner; padded panel entries are zero, so the in-bounds
/// chains are identical and this reference is bit-exact against them.
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile(
    ap: &[f32],
    bp: &[f32],
    mr: usize,
    nr: usize,
    kc: usize,
    rows: usize,
    cols: usize,
    init: bool,
    c: &mut [f32],
    ldc: usize,
) {
    debug_assert!(rows <= mr && cols <= nr);
    debug_assert!(ap.len() >= kc * mr && bp.len() >= kc * nr);
    if kc == 0 {
        if init {
            for r in 0..rows {
                c[r * ldc..r * ldc + cols].fill(0.0);
            }
        }
        return;
    }
    for r in 0..rows {
        let c_row = &mut c[r * ldc..r * ldc + cols];
        for (j, o) in c_row.iter_mut().enumerate() {
            let seed = if init { 0.0 } else { *o };
            *o = fma_dot_chain(&ap[r..], mr, &bp[j..], nr, kc, seed);
        }
    }
}

// Coefficients of the rational tanh approximation (odd degree-13 numerator
// over even degree-6 denominator, evaluated in x^2). The full-precision
// decimals document the canonical coefficient set; they round to the f32
// values actually used.
#[allow(clippy::excessive_precision)]
mod tanh_coeffs {
    pub const CLAMP: f32 = 7.90531110763549805;
    pub const A1: f32 = 4.89352455891786e-03;
    pub const A3: f32 = 6.37261928875436e-04;
    pub const A5: f32 = 1.48572235717979e-05;
    pub const A7: f32 = 5.12229709037114e-08;
    pub const A9: f32 = -8.60467152213735e-11;
    pub const A11: f32 = 2.00018790482477e-13;
    pub const A13: f32 = -2.76076847742355e-16;
    pub const B0: f32 = 4.89352518554385e-03;
    pub const B2: f32 = 2.26843463243900e-03;
    pub const B4: f32 = 1.18534705686654e-04;
    pub const B6: f32 = 1.19825839466702e-06;
}
pub(super) use tanh_coeffs::*;

/// One lane of the shared tanh algorithm: clamp to `±CLAMP`, evaluate the
/// rational approximation with a fixed fused-multiply-add chain, pass NaN
/// through unchanged. Every operation is correctly rounded, so the AVX2
/// path (same operations on eight lanes) is bit-identical.
#[inline]
pub fn tanh_lane(x: f32) -> f32 {
    if x.is_nan() {
        return x;
    }
    // Written as max-then-min (not `clamp`) to mirror the AVX2 path's
    // `_mm256_min_ps(_mm256_max_ps(..))` sequence operation for operation.
    #[allow(clippy::manual_clamp)]
    let xc = x.max(-CLAMP).min(CLAMP);
    let x2 = xc * xc;
    let mut p = A13;
    p = p.mul_add(x2, A11);
    p = p.mul_add(x2, A9);
    p = p.mul_add(x2, A7);
    p = p.mul_add(x2, A5);
    p = p.mul_add(x2, A3);
    p = p.mul_add(x2, A1);
    let num = p * xc;
    let mut q = B6;
    q = q.mul_add(x2, B4);
    q = q.mul_add(x2, B2);
    q = q.mul_add(x2, B0);
    num / q
}

/// `out[i] = tanh(a[i])` via [`tanh_lane`].
pub fn tanh(a: &[f32], out: &mut [f32]) {
    for (o, &x) in out.iter_mut().zip(a) {
        *o = tanh_lane(x);
    }
}
