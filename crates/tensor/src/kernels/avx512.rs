//! AVX-512F implementation of the GEMM micro-tile.
//!
//! Same contract as [`super::avx2`]: every output element continues its
//! ascending-`k` fused-multiply-add chain exactly as the scalar reference
//! does, so the 512-bit tile is bit-identical to both the scalar and the
//! AVX2 legs — a chain's order depends only on `k` order, never on vector
//! width or tile geometry. Only the micro-tile lives here; every other
//! kernel family saturates with 256-bit vectors already.
//!
//! Like `avx2`, this module is a sanctioned `unsafe` island: intrinsics
//! require it, and every function is `#[target_feature]`-gated so it must
//! only be called after runtime detection (enforced by the dispatch layer
//! in [`super`]).
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __mmask16, _mm512_fmadd_ps, _mm512_loadu_ps, _mm512_mask_storeu_ps, _mm512_maskz_loadu_ps,
    _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
};

const W: usize = 16;

/// Mask selecting the first `lanes` of sixteen `f32` lanes.
#[inline]
fn lane_mask(lanes: usize) -> __mmask16 {
    debug_assert!(lanes <= W);
    ((1u32 << lanes) - 1) as __mmask16
}

/// AVX-512 twin of [`super::scalar::gemm_tile`] for the 12x32 micro-tile
/// geometry: twelve rows of two `zmm` accumulators, fed by one broadcast
/// of the packed A panel and two loads of the packed B panel per `k` step.
///
/// Accumulator seeding, zero-padded edge handling and the deterministic
/// per-element chain order are exactly as in [`super::avx2::gemm_tile_6x16`];
/// partial columns use `__mmask16` masked C loads/stores.
///
/// # Safety
///
/// Requires AVX-512F, verified by the caller via runtime detection.
/// `ap`/`bp` must hold at least `kc*12` / `kc*32` elements and `c` the
/// `rows x cols` corner at row stride `ldc`.
#[target_feature(enable = "avx512f")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn gemm_tile_12x32(
    ap: *const f32,
    bp: *const f32,
    kc: usize,
    rows: usize,
    cols: usize,
    init: bool,
    c: *mut f32,
    ldc: usize,
) {
    const MR: usize = 12;
    debug_assert!(rows <= MR && cols <= 2 * W && rows > 0 && cols > 0);
    let full = cols == 2 * W;
    let m0 = lane_mask(cols.min(W));
    let m1 = lane_mask(cols.saturating_sub(W));
    let mut acc = [[_mm512_setzero_ps(); 2]; MR];
    if !init {
        for (r, a) in acc.iter_mut().enumerate().take(rows) {
            let p = c.add(r * ldc);
            if full {
                a[0] = _mm512_loadu_ps(p);
                a[1] = _mm512_loadu_ps(p.add(W));
            } else {
                a[0] = _mm512_maskz_loadu_ps(m0, p);
                if cols > W {
                    a[1] = _mm512_maskz_loadu_ps(m1, p.add(W));
                }
            }
        }
    }
    for kk in 0..kc {
        let b0 = _mm512_loadu_ps(bp.add(kk * 2 * W));
        let b1 = _mm512_loadu_ps(bp.add(kk * 2 * W + W));
        for (r, a) in acc.iter_mut().enumerate() {
            let av = _mm512_set1_ps(*ap.add(kk * MR + r));
            a[0] = _mm512_fmadd_ps(av, b0, a[0]);
            a[1] = _mm512_fmadd_ps(av, b1, a[1]);
        }
    }
    for (r, a) in acc.iter().enumerate().take(rows) {
        let p = c.add(r * ldc);
        if full {
            _mm512_storeu_ps(p, a[0]);
            _mm512_storeu_ps(p.add(W), a[1]);
        } else {
            _mm512_mask_storeu_ps(p, m0, a[0]);
            if cols > W {
                _mm512_mask_storeu_ps(p.add(W), m1, a[1]);
            }
        }
    }
}
