//! Runtime-dispatched compute kernels with deterministic lane semantics.
//!
//! Every hot inner loop of the crate (matmul rows, elementwise arithmetic,
//! fused accumulation, reductions, tanh) routes through this module. Each
//! kernel has two implementations:
//!
//! - a **pinned-order scalar reference** ([`scalar`]) that fixes the exact
//!   sequence of correctly-rounded IEEE-754 operations per output element —
//!   reductions accumulate into eight lane-strided partial sums combined in
//!   a fixed tree, and fused operations use [`f32::mul_add`];
//! - an **AVX2+FMA implementation** (private `avx2` module) that performs
//!   the *same* per-element operation sequence eight lanes at a time.
//!
//! Because both paths execute identical correctly-rounded operations in
//! identical order, their results are **bit-identical** for every input
//! (NaN and signed zero included). Switching the dispatch therefore never
//! perturbs the repo's determinism invariants: planned vs unplanned
//! attacks, thread-count independence and tape reuse all hold under either
//! path, and under either path they agree with each other.
//!
//! # Dispatch
//!
//! The first kernel call probes the environment once: if `COLPER_SIMD` is
//! set to `off`, `0` or `scalar` the scalar reference is pinned; otherwise
//! AVX2+FMA is used when `is_x86_feature_detected!` confirms both features
//! (always scalar off x86_64). Tests can flip the path at runtime with
//! [`set_simd_enabled`]; [`simd_active`] reports the current choice.

pub mod scalar;

#[cfg(target_arch = "x86_64")]
mod avx2;

#[cfg(target_arch = "x86_64")]
mod avx512;

use std::sync::atomic::{AtomicU8, Ordering};

const MODE_UNINIT: u8 = 0;
const MODE_SCALAR: u8 = 1;
const MODE_SIMD: u8 = 2;

static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// Whether `COLPER_SIMD=avx2` pinned the GEMM micro-tile to the 256-bit
/// leg (`AVX512_OFF`) or AVX-512F may be used when detected. Separate
/// from [`MODE`] so the wide tile can be toggled without touching the
/// scalar/SIMD split the rest of the kernel inventory dispatches on.
static AVX512: AtomicU8 = AtomicU8::new(MODE_UNINIT);
const AVX512_OFF: u8 = 1;
const AVX512_ON: u8 = 2;

/// Whether the running CPU supports the AVX2+FMA kernel path.
pub fn simd_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Whether the running CPU supports the AVX-512F micro-tile leg.
pub fn avx512_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn detect() -> u8 {
    if let Ok(v) = std::env::var("COLPER_SIMD") {
        let v = v.to_ascii_lowercase();
        if v == "off" || v == "0" || v == "scalar" {
            return MODE_SCALAR;
        }
    }
    if simd_supported() {
        MODE_SIMD
    } else {
        MODE_SCALAR
    }
}

fn detect_avx512() -> u8 {
    if let Ok(v) = std::env::var("COLPER_SIMD") {
        if v.eq_ignore_ascii_case("avx2") {
            return AVX512_OFF;
        }
    }
    if avx512_supported() {
        AVX512_ON
    } else {
        AVX512_OFF
    }
}

#[inline]
fn mode() -> u8 {
    let m = MODE.load(Ordering::Relaxed);
    if m != MODE_UNINIT {
        return m;
    }
    let d = detect();
    MODE.store(d, Ordering::Relaxed);
    d
}

/// True when kernel calls currently dispatch to the AVX2+FMA path.
#[inline]
pub fn simd_active() -> bool {
    mode() == MODE_SIMD
}

/// True when the GEMM micro-tile currently dispatches to the AVX-512 leg
/// (requires the SIMD path to be active as well).
#[inline]
pub fn avx512_active() -> bool {
    if !simd_active() {
        return false;
    }
    let s = AVX512.load(Ordering::Relaxed);
    if s != MODE_UNINIT {
        return s == AVX512_ON;
    }
    let d = detect_avx512();
    AVX512.store(d, Ordering::Relaxed);
    d == AVX512_ON
}

/// Forces the dispatch to the SIMD path (`true`, ignored when the CPU
/// lacks AVX2+FMA) or the scalar reference (`false`), overriding the
/// `COLPER_SIMD` environment probe.
///
/// Because the two paths are bit-identical, flipping this at any point —
/// even mid-computation, from another thread — changes performance only,
/// never results. Intended for tests and benchmarks that compare paths
/// within one process.
pub fn set_simd_enabled(enabled: bool) {
    let m = if enabled && simd_supported() { MODE_SIMD } else { MODE_SCALAR };
    MODE.store(m, Ordering::Relaxed);
}

/// Forces the GEMM micro-tile to the AVX-512 leg (`true`, ignored when
/// the CPU lacks AVX-512F) or pins it to the 256-bit tile (`false`),
/// overriding the `COLPER_SIMD=avx2` environment probe. Like
/// [`set_simd_enabled`], flipping this never changes results — all tile
/// legs are bit-identical.
pub fn set_avx512_enabled(enabled: bool) {
    let s = if enabled && avx512_supported() { AVX512_ON } else { AVX512_OFF };
    AVX512.store(s, Ordering::Relaxed);
}

/// Credits `calls` kernel invocations to the active dispatch path's
/// counter (`kernel.dispatch.simd` / `kernel.dispatch.scalar`).
///
/// Counting happens here, in bulk at the tensor-op boundary, rather than
/// inside the `dispatched!` wrappers: the innermost kernels run hundreds
/// of thousands of times per attack step, and even one relaxed atomic
/// increment per call costs ~30% of a step when tracing is on. Callers
/// pass the sequential-order invocation count (a matmul credits its `m`
/// row kernels, a loop its trip count), so the totals are independent of
/// thread count and chunking.
#[inline]
pub fn count_dispatch(calls: usize) {
    if calls == 0 || !colper_obs::enabled() {
        return;
    }
    let counter = if simd_active() {
        &colper_obs::counters::KERNEL_DISPATCH_SIMD
    } else {
        &colper_obs::counters::KERNEL_DISPATCH_SCALAR
    };
    counter.add(calls as u64);
}

/// Short description of the active kernel path for logs and bench reports.
pub fn features() -> &'static str {
    if simd_active() {
        "avx2+fma"
    } else {
        "scalar"
    }
}

/// The instruction set the GEMM micro-tile dispatches to.
///
/// Each leg owns a fixed micro-tile geometry, but geometry never affects
/// results: every output element accumulates its `k` terms as one
/// ascending-`k` fused chain regardless of how elements are grouped into
/// tiles or vector lanes, so all three legs are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmIsa {
    /// Pinned-order scalar reference ([`scalar::gemm_tile`]).
    Scalar,
    /// 256-bit 6x16 tile (`avx2::gemm_tile_6x16`).
    Avx2,
    /// 512-bit 12x32 tile (`avx512::gemm_tile_12x32`).
    Avx512,
}

impl GemmIsa {
    /// `(MR, NR)` micro-tile geometry of this leg. The scalar reference
    /// uses the AVX2 geometry (tile shape is a grouping, not an order, so
    /// any choice is bit-identical — matching shapes keeps panel sizes
    /// comparable across legs).
    pub fn micro_tile(self) -> (usize, usize) {
        match self {
            GemmIsa::Scalar | GemmIsa::Avx2 => (6, 16),
            GemmIsa::Avx512 => (12, 32),
        }
    }

    /// Short name for bench reports and logs.
    pub fn name(self) -> &'static str {
        match self {
            GemmIsa::Scalar => "scalar",
            GemmIsa::Avx2 => "avx2",
            GemmIsa::Avx512 => "avx512",
        }
    }
}

/// The GEMM micro-tile leg the current dispatch state selects.
#[inline]
pub fn gemm_isa() -> GemmIsa {
    if !simd_active() {
        GemmIsa::Scalar
    } else if avx512_active() {
        GemmIsa::Avx512
    } else {
        GemmIsa::Avx2
    }
}

/// One GEMM micro-tile: continues (or starts, when `init`) the ascending
/// `k` chains of the `rows x cols` in-bounds corner of an `MR x NR` tile
/// against the packed panels `ap` (stride `MR`) and `bp` (stride `NR`),
/// writing into `c` at row stride `ldc`. Dispatches to `isa`'s leg; all
/// legs are bit-identical. See [`scalar::gemm_tile`] for the semantics.
///
/// # Panics
///
/// Panics when the panels or `c` are too short for the requested tile.
#[allow(unsafe_code)]
#[allow(clippy::too_many_arguments)]
pub fn gemm_tile(
    isa: GemmIsa,
    ap: &[f32],
    bp: &[f32],
    kc: usize,
    rows: usize,
    cols: usize,
    init: bool,
    c: &mut [f32],
    ldc: usize,
) {
    let (mr, nr) = isa.micro_tile();
    assert!(rows > 0 && rows <= mr && cols > 0 && cols <= nr, "gemm_tile: corner out of tile");
    assert!(ap.len() >= kc * mr && bp.len() >= kc * nr, "gemm_tile: packed panel too short");
    assert!(c.len() >= (rows - 1) * ldc + cols, "gemm_tile: output slab too short");
    match isa {
        // SAFETY: each SIMD leg runs only after runtime feature detection
        // confirmed its instruction set on this CPU (an unsupported leg
        // falls through to the bit-identical scalar reference in the
        // requested geometry), and the panel/output bounds are asserted
        // above.
        #[cfg(target_arch = "x86_64")]
        GemmIsa::Avx2 if simd_supported() => unsafe {
            avx2::gemm_tile_6x16(
                ap.as_ptr(),
                bp.as_ptr(),
                kc,
                rows,
                cols,
                init,
                c.as_mut_ptr(),
                ldc,
            )
        },
        #[cfg(target_arch = "x86_64")]
        GemmIsa::Avx512 if avx512_supported() => unsafe {
            avx512::gemm_tile_12x32(
                ap.as_ptr(),
                bp.as_ptr(),
                kc,
                rows,
                cols,
                init,
                c.as_mut_ptr(),
                ldc,
            )
        },
        _ => scalar::gemm_tile(ap, bp, mr, nr, kc, rows, cols, init, c, ldc),
    }
}

macro_rules! dispatched {
    ($(#[$doc:meta])* $name:ident ( $($arg:ident : $ty:ty),* ) $(-> $ret:ty)?) => {
        $(#[$doc])*
        #[inline]
        // The one sanctioned use of `unsafe` in the crate: invoking the
        // feature-gated AVX2 twin after runtime detection.
        #[allow(unsafe_code)]
        pub fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            if simd_active() {
                // SAFETY: `simd_active` is true only when runtime feature
                // detection confirmed AVX2+FMA on this CPU (or a test
                // explicitly enabled it through the same detection gate).
                return unsafe { avx2::$name($($arg),*) };
            }
            scalar::$name($($arg),*)
        }
    };
}

dispatched! {
    /// `out[i] = a[i] + b[i]`. See [`scalar::add`] for the exact semantics.
    add(a: &[f32], b: &[f32], out: &mut [f32])
}
dispatched! {
    /// `out[i] = a[i] - b[i]`. See [`scalar::sub`] for the exact semantics.
    sub(a: &[f32], b: &[f32], out: &mut [f32])
}
dispatched! {
    /// `out[i] = a[i] * b[i]`. See [`scalar::mul`] for the exact semantics.
    mul(a: &[f32], b: &[f32], out: &mut [f32])
}
dispatched! {
    /// `out[i] = a[i] / b[i]`. See [`scalar::div`] for the exact semantics.
    div(a: &[f32], b: &[f32], out: &mut [f32])
}
dispatched! {
    /// `dst[i] += src[i]`. See [`scalar::add_assign`].
    add_assign(dst: &mut [f32], src: &[f32])
}
dispatched! {
    /// `dst[i] -= src[i]`. See [`scalar::sub_assign`].
    sub_assign(dst: &mut [f32], src: &[f32])
}
dispatched! {
    /// `dst[i] *= src[i]`. See [`scalar::mul_assign`].
    mul_assign(dst: &mut [f32], src: &[f32])
}
dispatched! {
    /// `dst[i] = fma(alpha, x[i], dst[i])`. See [`scalar::axpy`].
    axpy(dst: &mut [f32], alpha: f32, x: &[f32])
}
dispatched! {
    /// `dst[i] = fma(a[i], b[i], dst[i])`. See [`scalar::add_prod_assign`].
    add_prod_assign(dst: &mut [f32], a: &[f32], b: &[f32])
}
dispatched! {
    /// `dst[i] = fma(-a[i], b[i], dst[i])`. See [`scalar::sub_prod_assign`].
    sub_prod_assign(dst: &mut [f32], a: &[f32], b: &[f32])
}
dispatched! {
    /// `out[i] = fma(a[i], b[i], c[i])`. See [`scalar::mul_add`].
    mul_add(a: &[f32], b: &[f32], c: &[f32], out: &mut [f32])
}
dispatched! {
    /// `out[i] = a[i] * s`. See [`scalar::scale`].
    scale(a: &[f32], s: f32, out: &mut [f32])
}
dispatched! {
    /// `dst[i] *= s`. See [`scalar::scale_assign`].
    scale_assign(dst: &mut [f32], s: f32)
}
dispatched! {
    /// `out[i] = tanh(a[i])` via the shared rational approximation.
    /// See [`scalar::tanh`] / [`scalar::tanh_lane`].
    tanh(a: &[f32], out: &mut [f32])
}
dispatched! {
    /// Lane-strided sum of all elements. See [`scalar::sum`].
    sum(a: &[f32]) -> f32
}
dispatched! {
    /// Lane-strided fused dot product. See [`scalar::dot`].
    dot(a: &[f32], b: &[f32]) -> f32
}
dispatched! {
    /// Lane-strided fused sum of squares. See [`scalar::sum_sq`].
    sum_sq(a: &[f32]) -> f32
}
dispatched! {
    /// One output row of a matrix product: `out_row += a_row * b` where
    /// `b` is `k x n` row-major. See [`scalar::matmul_row`].
    matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n: usize, seed: f32) -> Vec<f32> {
        // Deterministic, sign-varied, includes exact zeros and subnormal-ish
        // magnitudes to exercise rounding paths.
        (0..n)
            .map(|i| {
                let x = ((i as f32) * 0.37 + seed).sin() * 3.0;
                if i % 17 == 0 {
                    0.0
                } else {
                    x
                }
            })
            .collect()
    }

    /// Serializes tests that flip the process-global dispatch state.
    static PATH_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    /// Runs `f` once on each dispatch path and asserts bit identity.
    fn both_paths(f: impl Fn() -> Vec<u32>) {
        let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was = simd_active();
        set_simd_enabled(false);
        let scalar_bits = f();
        set_simd_enabled(true);
        let simd_bits = f();
        set_simd_enabled(was);
        if simd_supported() {
            assert_eq!(scalar_bits, simd_bits, "scalar and SIMD paths disagree");
        }
    }

    #[test]
    fn zip_and_fused_kernels_bit_identical_across_paths() {
        for n in [0usize, 1, 3, 7, 8, 9, 31, 32, 33, 100] {
            let a = data(n, 0.1);
            let b = data(n, 1.9);
            let c = data(n, 2.7);
            both_paths(|| {
                let mut bits = Vec::new();
                let mut out = vec![f32::NAN; n];
                add(&a, &b, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                sub(&a, &b, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                mul(&a, &b, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                div(&a, &b, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                mul_add(&a, &b, &c, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                scale(&a, -1.75, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                tanh(&a, &mut out);
                bits.extend(out.iter().map(|v| v.to_bits()));
                let mut d = c.clone();
                add_assign(&mut d, &a);
                sub_assign(&mut d, &b);
                mul_assign(&mut d, &a);
                axpy(&mut d, 0.37, &b);
                add_prod_assign(&mut d, &a, &b);
                sub_prod_assign(&mut d, &b, &c);
                scale_assign(&mut d, 1.0 / 3.0);
                bits.extend(d.iter().map(|v| v.to_bits()));
                bits.push(sum(&a).to_bits());
                bits.push(dot(&a, &b).to_bits());
                bits.push(sum_sq(&a).to_bits());
                bits
            });
        }
    }

    #[test]
    fn matmul_row_bit_identical_across_paths() {
        for (k, n) in [(0usize, 5usize), (5, 0), (1, 1), (3, 13), (8, 33), (17, 64), (64, 100)] {
            let a_row = data(k, 0.5);
            let b = data(k * n, 1.3);
            let seed_out = data(n, 4.2);
            both_paths(|| {
                let mut out = seed_out.clone();
                matmul_row(&a_row, &b, n, &mut out);
                out.iter().map(|v| v.to_bits()).collect()
            });
        }
    }

    #[test]
    fn tanh_matches_libm_closely_and_passes_nan() {
        for i in -1000..=1000 {
            let x = i as f32 * 0.01;
            let got = scalar::tanh_lane(x);
            let want = x.tanh();
            assert!((got - want).abs() <= 1e-6, "tanh({x}): got {got}, want {want}");
        }
        // Saturation (the clamp point is where true tanh is ~1 - 2.4e-7,
        // so the saturated value sits a few ULP below exactly 1) and NaN
        // behaviour.
        assert!((scalar::tanh_lane(30.0) - 1.0).abs() < 3e-7);
        assert!((scalar::tanh_lane(-30.0) + 1.0).abs() < 3e-7);
        assert!((scalar::tanh_lane(f32::INFINITY) - 1.0).abs() < 3e-7);
        assert!((scalar::tanh_lane(f32::NEG_INFINITY) + 1.0).abs() < 3e-7);
        assert!(scalar::tanh_lane(f32::NAN).is_nan());
        assert_eq!(scalar::tanh_lane(0.0).to_bits(), 0.0f32.to_bits());
        assert_eq!(scalar::tanh_lane(-0.0).to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn gemm_tile_legs_bit_identical_to_per_element_chains() {
        let kc = 13usize;
        for isa in [GemmIsa::Scalar, GemmIsa::Avx2, GemmIsa::Avx512] {
            // Unsupported legs fall back to scalar inside the dispatcher,
            // which still exercises the requested geometry.
            let (mr, nr) = isa.micro_tile();
            let ap = data(kc * mr, 0.3);
            let bp = data(kc * nr, 1.1);
            let ldc = nr + 3;
            for rows in [1usize, mr - 1, mr] {
                for cols in [1usize, nr / 2 - 1, nr / 2 + 1, nr] {
                    for init in [false, true] {
                        let seed = data(mr * ldc, 2.2);
                        let mut c = seed.clone();
                        gemm_tile(isa, &ap, &bp, kc, rows, cols, init, &mut c, ldc);
                        for r in 0..mr {
                            for j in 0..ldc {
                                let got = c[r * ldc + j];
                                if r < rows && j < cols {
                                    let s = if init { 0.0 } else { seed[r * ldc + j] };
                                    let want =
                                        scalar::fma_dot_chain(&ap[r..], mr, &bp[j..], nr, kc, s);
                                    assert_eq!(
                                        got.to_bits(),
                                        want.to_bits(),
                                        "{isa:?} corner ({rows},{cols}) element ({r},{j})"
                                    );
                                } else {
                                    assert_eq!(
                                        got.to_bits(),
                                        seed[r * ldc + j].to_bits(),
                                        "{isa:?} corner ({rows},{cols}) touched ({r},{j})"
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn gemm_isa_respects_dispatch_gates() {
        let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was_simd = simd_active();
        let was_512 = avx512_active();
        set_simd_enabled(false);
        assert_eq!(gemm_isa(), GemmIsa::Scalar);
        set_simd_enabled(true);
        set_avx512_enabled(false);
        if simd_supported() {
            assert_eq!(gemm_isa(), GemmIsa::Avx2);
        }
        set_avx512_enabled(true);
        if avx512_supported() && simd_supported() {
            assert_eq!(gemm_isa(), GemmIsa::Avx512);
        }
        set_simd_enabled(was_simd);
        set_avx512_enabled(was_512);
    }

    #[test]
    fn env_detection_reports_a_valid_mode() {
        let _g = PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Whatever the environment says, the mode must resolve and the
        // feature string must match it.
        let active = simd_active();
        assert_eq!(features(), if active { "avx2+fma" } else { "scalar" });
        assert!(!active || simd_supported());
    }
}
