//! AVX2+FMA implementations of the kernels in [`super::scalar`].
//!
//! Each function mirrors its scalar reference *operation for operation*:
//! elementwise kernels run the identical per-lane expression (with
//! `vfmadd*ps` matching [`f32::mul_add`]), and reductions keep the same
//! eight lane-strided partial sums — the `ymm` accumulator *is* the scalar
//! reference's `[f32; 8]` partial array — combined with the same fixed
//! tree. Because every instruction used here is correctly rounded
//! (IEEE-754 add/sub/mul/div/fma/max/min), the results are bit-identical
//! to the scalar path for every input, NaN and signed zero included.
//!
//! This is the only module in the crate allowed to use `unsafe`: the
//! intrinsics require it, and every function is `#[target_feature]`-gated
//! so it must only be called after runtime detection (enforced by the
//! dispatch layer in [`super`]).
#![allow(unsafe_code)]

use super::scalar;
use core::arch::x86_64::{
    __m256i, _mm256_add_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_cmpgt_epi32, _mm256_div_ps,
    _mm256_fmadd_ps, _mm256_fnmadd_ps, _mm256_loadu_ps, _mm256_maskload_ps, _mm256_maskstore_ps,
    _mm256_max_ps, _mm256_min_ps, _mm256_mul_ps, _mm256_set1_epi32, _mm256_set1_ps,
    _mm256_setr_epi32, _mm256_setzero_ps, _mm256_storeu_ps, _mm256_sub_ps, _CMP_UNORD_Q,
};

const W: usize = 8;

macro_rules! zip_kernel {
    ($name:ident, $vop:expr, $sop:expr) => {
        /// AVX2 twin of the like-named scalar reference kernel.
        ///
        /// # Safety
        ///
        /// Requires AVX2+FMA, verified by the caller via runtime detection.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub(super) unsafe fn $name(a: &[f32], b: &[f32], out: &mut [f32]) {
            let n = out.len();
            assert!(a.len() >= n && b.len() >= n);
            let mut i = 0;
            while i + W <= n {
                let va = _mm256_loadu_ps(a.as_ptr().add(i));
                let vb = _mm256_loadu_ps(b.as_ptr().add(i));
                _mm256_storeu_ps(out.as_mut_ptr().add(i), $vop(va, vb));
                i += W;
            }
            while i < n {
                out[i] = $sop(a[i], b[i]);
                i += 1;
            }
        }
    };
}

zip_kernel!(add, _mm256_add_ps, |x: f32, y: f32| x + y);
zip_kernel!(sub, _mm256_sub_ps, |x: f32, y: f32| x - y);
zip_kernel!(mul, _mm256_mul_ps, |x: f32, y: f32| x * y);
zip_kernel!(div, _mm256_div_ps, |x: f32, y: f32| x / y);

macro_rules! assign_kernel {
    ($name:ident, $vop:expr, $sop:expr) => {
        /// AVX2 twin of the like-named scalar reference kernel.
        ///
        /// # Safety
        ///
        /// Requires AVX2+FMA, verified by the caller via runtime detection.
        #[target_feature(enable = "avx2", enable = "fma")]
        pub(super) unsafe fn $name(dst: &mut [f32], src: &[f32]) {
            let n = dst.len();
            assert!(src.len() >= n);
            let mut i = 0;
            while i + W <= n {
                let vd = _mm256_loadu_ps(dst.as_ptr().add(i));
                let vs = _mm256_loadu_ps(src.as_ptr().add(i));
                _mm256_storeu_ps(dst.as_mut_ptr().add(i), $vop(vd, vs));
                i += W;
            }
            while i < n {
                dst[i] = $sop(dst[i], src[i]);
                i += 1;
            }
        }
    };
}

assign_kernel!(add_assign, _mm256_add_ps, |d: f32, s: f32| d + s);
assign_kernel!(sub_assign, _mm256_sub_ps, |d: f32, s: f32| d - s);
assign_kernel!(mul_assign, _mm256_mul_ps, |d: f32, s: f32| d * s);

/// AVX2 twin of [`scalar::axpy`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn axpy(dst: &mut [f32], alpha: f32, x: &[f32]) {
    let n = dst.len();
    assert!(x.len() >= n);
    let va = _mm256_set1_ps(alpha);
    let mut i = 0;
    while i + W <= n {
        let vd = _mm256_loadu_ps(dst.as_ptr().add(i));
        let vx = _mm256_loadu_ps(x.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_fmadd_ps(va, vx, vd));
        i += W;
    }
    while i < n {
        dst[i] = alpha.mul_add(x[i], dst[i]);
        i += 1;
    }
}

/// AVX2 twin of [`scalar::add_prod_assign`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn add_prod_assign(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let n = dst.len();
    assert!(a.len() >= n && b.len() >= n);
    let mut i = 0;
    while i + W <= n {
        let vd = _mm256_loadu_ps(dst.as_ptr().add(i));
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_fmadd_ps(va, vb, vd));
        i += W;
    }
    while i < n {
        dst[i] = a[i].mul_add(b[i], dst[i]);
        i += 1;
    }
}

/// AVX2 twin of [`scalar::sub_prod_assign`] (`vfnmadd` computes the same
/// correctly-rounded `-a*b + dst` as the scalar `(-a).mul_add(b, dst)`).
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn sub_prod_assign(dst: &mut [f32], a: &[f32], b: &[f32]) {
    let n = dst.len();
    assert!(a.len() >= n && b.len() >= n);
    let mut i = 0;
    while i + W <= n {
        let vd = _mm256_loadu_ps(dst.as_ptr().add(i));
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_fnmadd_ps(va, vb, vd));
        i += W;
    }
    while i < n {
        dst[i] = (-a[i]).mul_add(b[i], dst[i]);
        i += 1;
    }
}

/// AVX2 twin of [`scalar::mul_add`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn mul_add(a: &[f32], b: &[f32], c: &[f32], out: &mut [f32]) {
    let n = out.len();
    assert!(a.len() >= n && b.len() >= n && c.len() >= n);
    let mut i = 0;
    while i + W <= n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        let vc = _mm256_loadu_ps(c.as_ptr().add(i));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_fmadd_ps(va, vb, vc));
        i += W;
    }
    while i < n {
        out[i] = a[i].mul_add(b[i], c[i]);
        i += 1;
    }
}

/// AVX2 twin of [`scalar::scale`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn scale(a: &[f32], s: f32, out: &mut [f32]) {
    let n = out.len();
    assert!(a.len() >= n);
    let vs = _mm256_set1_ps(s);
    let mut i = 0;
    while i + W <= n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_mul_ps(va, vs));
        i += W;
    }
    while i < n {
        out[i] = a[i] * s;
        i += 1;
    }
}

/// AVX2 twin of [`scalar::scale_assign`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn scale_assign(dst: &mut [f32], s: f32) {
    let n = dst.len();
    let vs = _mm256_set1_ps(s);
    let mut i = 0;
    while i + W <= n {
        let vd = _mm256_loadu_ps(dst.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_mul_ps(vd, vs));
        i += W;
    }
    while i < n {
        dst[i] *= s;
        i += 1;
    }
}

/// AVX2 twin of [`scalar::sum`]: the `ymm` accumulator is the scalar
/// reference's `[f32; 8]` partial array; tail elements fold into their
/// `i % 8` lanes after the store, then the shared fixed tree combines.
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn sum(a: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + W <= n {
        acc = _mm256_add_ps(acc, _mm256_loadu_ps(a.as_ptr().add(i)));
        i += W;
    }
    let mut lanes = [0.0f32; W];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (l, &v) in lanes.iter_mut().zip(&a[i..]) {
        *l += v;
    }
    scalar::combine(&lanes)
}

/// AVX2 twin of [`scalar::dot`]; same lane-strided partials as [`sum`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + W <= n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        let vb = _mm256_loadu_ps(b.as_ptr().add(i));
        acc = _mm256_fmadd_ps(va, vb, acc);
        i += W;
    }
    let mut lanes = [0.0f32; W];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (l, (&x, &y)) in lanes.iter_mut().zip(a[i..n].iter().zip(&b[i..n])) {
        *l = x.mul_add(y, *l);
    }
    scalar::combine(&lanes)
}

/// AVX2 twin of [`scalar::sum_sq`]; same lane-strided partials as [`sum`].
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn sum_sq(a: &[f32]) -> f32 {
    let n = a.len();
    let mut acc = _mm256_setzero_ps();
    let mut i = 0;
    while i + W <= n {
        let va = _mm256_loadu_ps(a.as_ptr().add(i));
        acc = _mm256_fmadd_ps(va, va, acc);
        i += W;
    }
    let mut lanes = [0.0f32; W];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    for (l, &v) in lanes.iter_mut().zip(&a[i..]) {
        *l = v.mul_add(v, *l);
    }
    scalar::combine(&lanes)
}

/// AVX2 twin of [`scalar::matmul_row`].
///
/// Columns advance in blocks of 32 (four independent `ymm` accumulators to
/// hide FMA latency), then 8, then a scalar tail; every output element
/// still accumulates its `k` terms as one ascending-`k` fused chain
/// starting from its initial value, identical to the scalar reference.
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn matmul_row(a_row: &[f32], b: &[f32], n: usize, out_row: &mut [f32]) {
    let k = a_row.len();
    assert!(b.len() >= k * n && out_row.len() >= n);
    if k == 0 {
        return;
    }
    let bp = b.as_ptr();
    let op = out_row.as_mut_ptr();
    let mut j = 0;
    while j + 4 * W <= n {
        let mut c0 = _mm256_loadu_ps(op.add(j));
        let mut c1 = _mm256_loadu_ps(op.add(j + W));
        let mut c2 = _mm256_loadu_ps(op.add(j + 2 * W));
        let mut c3 = _mm256_loadu_ps(op.add(j + 3 * W));
        for (kk, &a) in a_row.iter().enumerate() {
            let va = _mm256_set1_ps(a);
            let base = bp.add(kk * n + j);
            c0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base), c0);
            c1 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base.add(W)), c1);
            c2 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base.add(2 * W)), c2);
            c3 = _mm256_fmadd_ps(va, _mm256_loadu_ps(base.add(3 * W)), c3);
        }
        _mm256_storeu_ps(op.add(j), c0);
        _mm256_storeu_ps(op.add(j + W), c1);
        _mm256_storeu_ps(op.add(j + 2 * W), c2);
        _mm256_storeu_ps(op.add(j + 3 * W), c3);
        j += 4 * W;
    }
    while j + W <= n {
        let mut c0 = _mm256_loadu_ps(op.add(j));
        for (kk, &a) in a_row.iter().enumerate() {
            c0 = _mm256_fmadd_ps(_mm256_set1_ps(a), _mm256_loadu_ps(bp.add(kk * n + j)), c0);
        }
        _mm256_storeu_ps(op.add(j), c0);
        j += W;
    }
    while j < n {
        out_row[j] = scalar::fma_dot_chain(a_row, 1, &b[j..], n, k, out_row[j]);
        j += 1;
    }
}

/// Builds the lane mask selecting the first `lanes` of eight `f32` lanes
/// (for `maskload`/`maskstore` on a partially-covered tile edge).
///
/// # Safety
///
/// Requires AVX2, verified by the caller via runtime detection.
#[target_feature(enable = "avx2")]
unsafe fn lane_mask(lanes: usize) -> __m256i {
    _mm256_cmpgt_epi32(_mm256_set1_epi32(lanes as i32), _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7))
}

/// AVX2 twin of [`scalar::gemm_tile`] for the 6x16 micro-tile geometry:
/// six rows of two `ymm` accumulators, fed by one broadcast of the packed
/// A panel and two loads of the packed B panel per `k` step.
///
/// Accumulators start at zero (`init`) or at the tile's current C values,
/// and every element continues its ascending-`k` fused chain — the same
/// chain as the scalar reference and the row kernel, so results stay
/// bit-identical. Rows `>= rows` compute on zero-padded A entries and are
/// never stored; columns `>= cols` are handled by masked C loads/stores
/// (panel entries there are zero-padded, C memory is never touched).
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
/// `ap`/`bp` must hold at least `kc*6` / `kc*16` elements and `c` the
/// `rows x cols` corner at row stride `ldc`.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
pub(super) unsafe fn gemm_tile_6x16(
    ap: *const f32,
    bp: *const f32,
    kc: usize,
    rows: usize,
    cols: usize,
    init: bool,
    c: *mut f32,
    ldc: usize,
) {
    const MR: usize = 6;
    debug_assert!(rows <= MR && cols <= 2 * W && rows > 0 && cols > 0);
    let full = cols == 2 * W;
    let m0 = lane_mask(cols.min(W));
    let m1 = lane_mask(cols.saturating_sub(W));
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    if !init {
        for (r, a) in acc.iter_mut().enumerate().take(rows) {
            let p = c.add(r * ldc);
            if full {
                a[0] = _mm256_loadu_ps(p);
                a[1] = _mm256_loadu_ps(p.add(W));
            } else {
                a[0] = _mm256_maskload_ps(p, m0);
                if cols > W {
                    a[1] = _mm256_maskload_ps(p.add(W), m1);
                }
            }
        }
    }
    for kk in 0..kc {
        let b0 = _mm256_loadu_ps(bp.add(kk * 2 * W));
        let b1 = _mm256_loadu_ps(bp.add(kk * 2 * W + W));
        for (r, a) in acc.iter_mut().enumerate() {
            let av = _mm256_set1_ps(*ap.add(kk * MR + r));
            a[0] = _mm256_fmadd_ps(av, b0, a[0]);
            a[1] = _mm256_fmadd_ps(av, b1, a[1]);
        }
    }
    for (r, a) in acc.iter().enumerate().take(rows) {
        let p = c.add(r * ldc);
        if full {
            _mm256_storeu_ps(p, a[0]);
            _mm256_storeu_ps(p.add(W), a[1]);
        } else {
            _mm256_maskstore_ps(p, m0, a[0]);
            if cols > W {
                _mm256_maskstore_ps(p.add(W), m1, a[1]);
            }
        }
    }
}

/// AVX2 twin of [`scalar::tanh`]: the same clamp, fused polynomial chain
/// and division on eight lanes at a time, with NaN inputs passed through
/// bit-for-bit via an unordered-compare blend.
///
/// # Safety
///
/// Requires AVX2+FMA, verified by the caller via runtime detection.
#[target_feature(enable = "avx2", enable = "fma")]
pub(super) unsafe fn tanh(a: &[f32], out: &mut [f32]) {
    let n = out.len();
    assert!(a.len() >= n);
    let clamp_hi = _mm256_set1_ps(scalar::CLAMP);
    let clamp_lo = _mm256_set1_ps(-scalar::CLAMP);
    let mut i = 0;
    while i + W <= n {
        let x = _mm256_loadu_ps(a.as_ptr().add(i));
        // max/min with the clamp constant in the second operand: NaN lanes
        // come out clamped here but are replaced by the original x below.
        let xc = _mm256_min_ps(_mm256_max_ps(x, clamp_lo), clamp_hi);
        let x2 = _mm256_mul_ps(xc, xc);
        let mut p = _mm256_set1_ps(scalar::A13);
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(scalar::A11));
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(scalar::A9));
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(scalar::A7));
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(scalar::A5));
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(scalar::A3));
        p = _mm256_fmadd_ps(p, x2, _mm256_set1_ps(scalar::A1));
        let num = _mm256_mul_ps(p, xc);
        let mut q = _mm256_set1_ps(scalar::B6);
        q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(scalar::B4));
        q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(scalar::B2));
        q = _mm256_fmadd_ps(q, x2, _mm256_set1_ps(scalar::B0));
        let t = _mm256_div_ps(num, q);
        let nan_mask = _mm256_cmp_ps::<_CMP_UNORD_Q>(x, x);
        _mm256_storeu_ps(out.as_mut_ptr().add(i), _mm256_blendv_ps(t, x, nan_mask));
        i += W;
    }
    while i < n {
        out[i] = scalar::tanh_lane(a[i]);
        i += 1;
    }
}
