//! Dense 2-D `f32` tensor math for the COLPER reproduction.
//!
//! Every higher layer of the workspace (the autodiff tape, the neural
//! network layers, the segmentation models and the attack itself) stores its
//! numerical state in the [`Matrix`] type defined here: a row-major,
//! heap-allocated `rows x cols` matrix of `f32`.
//!
//! The crate deliberately stays two-dimensional. Point clouds are sets of
//! `N` points with `C` per-point features, so `[N, C]` matrices plus a small
//! family of gather/group operations (provided by `colper-autodiff`) cover
//! every computation in the paper without the complexity of full n-d
//! broadcasting.
//!
//! # Example
//!
//! ```
//! use colper_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b).unwrap();
//! assert_eq!(c, a);
//! ```

// `unsafe` is denied crate-wide and allowed back in exactly two places:
// the SIMD intrinsics inside `kernels::avx2` and `kernels::avx512`, which
// are gated behind runtime feature detection and mirror the safe scalar
// reference bit for bit.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod error;
pub mod gemm;
mod init;
pub mod kernels;
mod matrix;
mod ops;
mod par;
mod pool;
mod shaped;

pub use error::{ShapeError, TensorError};
pub use gemm::{gemm_mode, set_gemm_mode, GemmMode};
pub use init::Initializer;
pub use matrix::Matrix;
pub use pool::BufferPool;
pub use shaped::{ShapeMismatch, ShapedCols};
