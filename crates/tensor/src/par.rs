//! Ambient-runtime helpers for the parallel tensor kernels.
//!
//! Tensor ops sit at the bottom of the autodiff stack, far below any
//! signature a [`colper_runtime::Runtime`] handle could be threaded
//! through, so they consult the ambient runtime installed by
//! [`colper_runtime::Runtime::install`]. Every parallel kernel in this
//! crate partitions its *output* across threads (each element written by
//! exactly one task, with the same per-element operation order as the
//! sequential loop), so results are bit-identical to sequential execution
//! regardless of thread count.

use colper_runtime::Runtime;

/// Minimum multiply-accumulate count before a matmul goes parallel; below
/// this the scheduling overhead outweighs the arithmetic.
pub(crate) const MIN_PAR_MACS: usize = 1 << 15;

/// Minimum element count before an elementwise kernel goes parallel.
pub(crate) const MIN_PAR_ELEMS: usize = 1 << 15;

/// Returns the ambient runtime when `work` crosses `threshold` and the
/// runtime actually has workers; `None` means "run the sequential loop".
pub(crate) fn runtime_for(work: usize, threshold: usize) -> Option<Runtime> {
    if work < threshold {
        return None;
    }
    let rt = colper_runtime::current();
    if rt.is_sequential() {
        None
    } else {
        Some(rt)
    }
}

/// The per-thread slice length used to split `len` output elements.
pub(crate) fn chunk_len(len: usize, rt: &Runtime) -> usize {
    len.div_ceil(4 * rt.threads()).max(1)
}
