//! Error types for tensor operations.

use std::error::Error;
use std::fmt;

/// A shape mismatch between the operands of a tensor operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// The operation that was attempted, e.g. `"matmul"`.
    op: &'static str,
    /// Shape of the left-hand operand as `(rows, cols)`.
    lhs: (usize, usize),
    /// Shape of the right-hand operand as `(rows, cols)`.
    rhs: (usize, usize),
}

impl ShapeError {
    /// Creates a new shape error for the operation `op` with the two
    /// offending operand shapes.
    pub fn new(op: &'static str, lhs: (usize, usize), rhs: (usize, usize)) -> Self {
        Self { op, lhs, rhs }
    }

    /// The name of the operation that failed.
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// The `(rows, cols)` shape of the left operand.
    pub fn lhs(&self) -> (usize, usize) {
        self.lhs
    }

    /// The `(rows, cols)` shape of the right operand.
    pub fn rhs(&self) -> (usize, usize) {
        self.rhs
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape mismatch in {}: lhs is {}x{}, rhs is {}x{}",
            self.op, self.lhs.0, self.lhs.1, self.rhs.0, self.rhs.1
        )
    }
}

impl Error for ShapeError {}

/// The error type returned by fallible tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Operand shapes were incompatible.
    Shape(ShapeError),
    /// An index was out of bounds: `(index, bound)`.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The exclusive bound the index must stay below.
        bound: usize,
    },
    /// A constructor was handed data whose length disagrees with the
    /// requested shape.
    DataLength {
        /// Length of the provided buffer.
        got: usize,
        /// Length implied by the requested shape.
        expected: usize,
    },
    /// An operation that requires a non-empty matrix received an empty one.
    Empty(&'static str),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::Shape(e) => e.fmt(f),
            TensorError::IndexOutOfBounds { index, bound } => {
                write!(f, "index {index} out of bounds for dimension of size {bound}")
            }
            TensorError::DataLength { got, expected } => {
                write!(f, "data length {got} does not match shape requiring {expected}")
            }
            TensorError::Empty(op) => write!(f, "{op} requires a non-empty matrix"),
        }
    }
}

impl Error for TensorError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TensorError::Shape(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShapeError> for TensorError {
    fn from(e: ShapeError) -> Self {
        TensorError::Shape(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_error_display_mentions_op_and_shapes() {
        let e = ShapeError::new("matmul", (2, 3), (4, 5));
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn tensor_error_from_shape_error_preserves_source() {
        let e: TensorError = ShapeError::new("add", (1, 1), (2, 2)).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("add"));
    }

    #[test]
    fn index_error_display() {
        let e = TensorError::IndexOutOfBounds { index: 9, bound: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn data_length_error_display() {
        let e = TensorError::DataLength { got: 5, expected: 6 };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('6'));
    }

    #[test]
    fn accessors_round_trip() {
        let e = ShapeError::new("mul", (2, 3), (3, 2));
        assert_eq!(e.op(), "mul");
        assert_eq!(e.lhs(), (2, 3));
        assert_eq!(e.rhs(), (3, 2));
    }
}
