//! The core [`Matrix`] type: a row-major 2-D `f32` tensor.

use crate::TensorError;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `rows x cols` matrix of `f32` values.
///
/// `Matrix` is the universal container of the workspace: point features
/// (`[N, C]`), network weights (`[C_in, C_out]`), logits (`[N, classes]`)
/// and gradients all live in this type.
///
/// # Example
///
/// ```
/// use colper_tensor::Matrix;
///
/// let m = Matrix::zeros(2, 3);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 0.0);
/// ```
#[derive(Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self::filled(rows, cols, 1.0)
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self, TensorError> {
        if data.len() != rows * cols {
            return Err(TensorError::DataLength { got: data.len(), expected: rows * cols });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when the rows have uneven
    /// lengths, and [`TensorError::Empty`] when `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self, TensorError> {
        let first = rows.first().ok_or(TensorError::Empty("from_rows"))?;
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            if row.len() != cols {
                return Err(TensorError::DataLength { got: row.len(), expected: cols });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { rows: rows.len(), cols, data })
    }

    /// Creates a single-row matrix (`1 x n`) from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self { rows: 1, cols: values.len(), data: values.to_vec() }
    }

    /// Creates a single-column matrix (`n x 1`) from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Self { rows: values.len(), cols: 1, data: values.to_vec() }
    }

    /// Builds a `rows x cols` matrix by calling `f(r, c)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The shape as a `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements (`rows * cols`).
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix contains no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The underlying row-major buffer, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the underlying row-major buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row index {r} out of bounds for {} rows", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a slice.
    ///
    /// The fallible counterpart of [`Matrix::row`], following the same
    /// convention as [`Matrix::get`] / [`Matrix::at`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `r >= rows`.
    pub fn get_row(&self, r: usize) -> Result<&[f32], TensorError> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: self.rows });
        }
        Ok(&self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns row `r` as a mutable slice.
    ///
    /// The fallible counterpart of [`Matrix::row_mut`].
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `r >= rows`.
    pub fn get_row_mut(&mut self, r: usize) -> Result<&mut [f32], TensorError> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: self.rows });
        }
        Ok(&mut self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Returns element `(r, c)`.
    ///
    /// The fallible counterpart of [`Matrix::at`]; matches [`Matrix::set`]
    /// so the read/write pair share one error contract.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is outside
    /// the matrix.
    pub fn get(&self, r: usize, c: usize) -> Result<f32, TensorError> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: self.rows });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds { index: c, bound: self.cols });
        }
        Ok(self.data[r * self.cols + c])
    }

    /// Returns element `(r, c)`, panicking on out-of-bounds access.
    ///
    /// The by-value twin of `m[(r, c)]` for hot loops; prefer [`Matrix::get`]
    /// when the index is not known to be valid.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows` or `c >= cols`.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Returns a mutable reference to element `(r, c)`.
    ///
    /// The fallible counterpart of [`Matrix::at_mut`], completing the
    /// `get`/`at` convention for writes.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is outside
    /// the matrix.
    pub fn get_mut(&mut self, r: usize, c: usize) -> Result<&mut f32, TensorError> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: self.rows });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds { index: c, bound: self.cols });
        }
        Ok(&mut self.data[r * self.cols + c])
    }

    /// Returns a mutable reference to element `(r, c)`, panicking on
    /// out-of-bounds access.
    ///
    /// # Panics
    ///
    /// Panics when `r >= rows` or `c >= cols`.
    #[inline]
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }

    /// Sets element `(r, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when the index is outside
    /// the matrix.
    pub fn set(&mut self, r: usize, c: usize, value: f32) -> Result<(), TensorError> {
        if r >= self.rows {
            return Err(TensorError::IndexOutOfBounds { index: r, bound: self.rows });
        }
        if c >= self.cols {
            return Err(TensorError::IndexOutOfBounds { index: c, bound: self.cols });
        }
        self.data[r * self.cols + c] = value;
        Ok(())
    }

    /// Iterates over the rows of the matrix as slices, yielding exactly
    /// [`Matrix::rows`] items even for zero-column matrices (where every
    /// row is the empty slice).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        (0..self.rows).map(move |r| &self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Copies a rectangular sub-block `[r0..r1) x [c0..c1)` into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are out of range or inverted.
    pub fn block(&self, r0: usize, r1: usize, c0: usize, c1: usize) -> Matrix {
        let mut out = Matrix::zeros(r1.saturating_sub(r0), c1.saturating_sub(c0));
        self.block_into(r0, r1, c0, c1, &mut out);
        out
    }

    /// [`Matrix::block`] writing into a caller-provided matrix.
    ///
    /// # Panics
    ///
    /// Panics when the bounds are out of range or inverted, or when `out`
    /// has the wrong shape.
    pub fn block_into(&self, r0: usize, r1: usize, c0: usize, c1: usize, out: &mut Matrix) {
        assert!(r0 <= r1 && r1 <= self.rows, "row range {r0}..{r1} invalid for {} rows", self.rows);
        assert!(c0 <= c1 && c1 <= self.cols, "col range {c0}..{c1} invalid for {} cols", self.cols);
        assert_eq!(out.shape(), (r1 - r0, c1 - c0), "block_into: output shape mismatch");
        for r in r0..r1 {
            out.row_mut(r - r0).copy_from_slice(&self.row(r)[c0..c1]);
        }
    }

    /// Overwrites `self` with the contents of `src`.
    ///
    /// The in-place twin of `clone()` for recycled buffers: no allocation,
    /// every element is written.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ — a pooled buffer must never be
    /// silently reinterpreted as a different shape.
    pub fn fill_from(&mut self, src: &Matrix) {
        assert_eq!(
            self.shape(),
            src.shape(),
            "fill_from: shape mismatch (reusing a buffer across shapes is rejected)"
        );
        self.data.copy_from_slice(&src.data);
    }

    /// Selects the listed rows (allowing repetition) into a new matrix.
    ///
    /// Large gathers split the output rows across the ambient runtime; each
    /// output row is a plain copy, so results are identical at any thread
    /// count.
    ///
    /// # Panics
    ///
    /// Panics when an index is `>= rows`.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        self.select_rows_into(indices, &mut out);
        out
    }

    /// [`Matrix::select_rows`] writing into a caller-provided matrix.
    ///
    /// Uses the same parallel split (and therefore produces bit-identical
    /// results) as the allocating variant.
    ///
    /// # Panics
    ///
    /// Panics when an index is `>= rows` or `out` has the wrong shape.
    pub fn select_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        assert_eq!(
            out.shape(),
            (indices.len(), self.cols),
            "select_rows_into: output shape mismatch"
        );
        if self.cols == 0 {
            return;
        }
        if let Some(rt) = crate::par::runtime_for(out.len(), crate::par::MIN_PAR_ELEMS) {
            let rows_per = crate::par::chunk_len(indices.len(), &rt);
            let cols = self.cols;
            rt.par_chunks_mut(out.as_mut_slice(), rows_per * cols, |c, sub| {
                for (j, dst) in sub.chunks_mut(cols).enumerate() {
                    dst.copy_from_slice(self.row(indices[c * rows_per + j]));
                }
            });
            return;
        }
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Reshape to `(rows, cols)` preserving row-major order.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::DataLength`] when the element count changes.
    pub fn reshaped(&self, rows: usize, cols: usize) -> Result<Matrix, TensorError> {
        if rows * cols != self.data.len() {
            return Err(TensorError::DataLength { got: self.data.len(), expected: rows * cols });
        }
        Ok(Matrix { rows, cols, data: self.data.clone() })
    }

    /// True when every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Maximum absolute difference to another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics when the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff requires equal shapes");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0f32, f32::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_ROWS: usize = 8;
        for (i, row) in self.iter_rows().enumerate().take(MAX_ROWS) {
            write!(f, "  [")?;
            const MAX_COLS: usize = 12;
            for (j, v) in row.iter().enumerate().take(MAX_COLS) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if row.len() > MAX_COLS {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
            if i + 1 == MAX_ROWS && self.rows > MAX_ROWS {
                writeln!(f, "  ... ({} more rows)", self.rows - MAX_ROWS)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn iter_rows_yields_exactly_rows_items() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4.0, 5.0]);
    }

    #[test]
    fn iter_rows_zero_column_matrix_yields_empty_rows() {
        // Regression: chunks_exact(cols.max(1)) yielded zero rows for an
        // N x 0 matrix instead of N empty slices.
        let m = Matrix::zeros(4, 0);
        let rows: Vec<&[f32]> = m.iter_rows().collect();
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.is_empty()));
        // And a 0 x N matrix yields no rows.
        assert_eq!(Matrix::zeros(0, 5).iter_rows().count(), 0);
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
        assert!(matches!(
            Matrix::from_vec(2, 2, vec![1.0; 3]),
            Err(TensorError::DataLength { got: 3, expected: 4 })
        ));
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
        assert!(err.is_err());
    }

    #[test]
    fn from_rows_rejects_empty() {
        assert!(matches!(Matrix::from_rows(&[]), Err(TensorError::Empty(_))));
    }

    #[test]
    fn indexing_round_trip() {
        let mut m = Matrix::zeros(2, 3);
        m[(1, 2)] = 7.0;
        assert_eq!(m[(1, 2)], 7.0);
        assert_eq!(m.at(1, 2), 7.0);
        assert_eq!(m.get(1, 2), Ok(7.0));
        *m.at_mut(0, 1) = 3.0;
        assert_eq!(m.at(0, 1), 3.0);
    }

    #[test]
    fn get_and_set_share_the_fallible_contract() {
        let mut m = Matrix::zeros(2, 2);
        assert!(m.set(0, 0, 1.0).is_ok());
        assert!(m.set(2, 0, 1.0).is_err());
        assert!(m.set(0, 2, 1.0).is_err());
        assert_eq!(m.get(0, 0), Ok(1.0));
        assert!(matches!(m.get(2, 0), Err(TensorError::IndexOutOfBounds { index: 2, bound: 2 })));
        assert!(m.get(0, 2).is_err());
    }

    #[test]
    fn get_mut_is_the_fallible_twin_of_at_mut() {
        let mut m = Matrix::zeros(2, 2);
        *m.get_mut(0, 1).unwrap() = 7.0;
        assert_eq!(m.at(0, 1), 7.0);
        assert!(matches!(
            m.get_mut(2, 0),
            Err(TensorError::IndexOutOfBounds { index: 2, bound: 2 })
        ));
        assert!(m.get_mut(0, 2).is_err());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn at_panics_out_of_bounds() {
        Matrix::zeros(2, 2).at(2, 0);
    }

    #[test]
    fn get_row_is_the_fallible_twin_of_row() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get_row(1).unwrap(), m.row(1));
        assert!(matches!(m.get_row(2), Err(TensorError::IndexOutOfBounds { index: 2, bound: 2 })));
        m.get_row_mut(0).unwrap()[1] = 9.0;
        assert_eq!(m.row(0), &[1.0, 9.0]);
        assert!(m.get_row_mut(5).is_err());
    }

    #[test]
    fn rows_are_contiguous() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn block_extracts_sub_matrix() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f32);
        let b = m.block(1, 3, 2, 4);
        assert_eq!(b.shape(), (2, 2));
        assert_eq!(b.row(0), &[6.0, 7.0]);
        assert_eq!(b.row(1), &[10.0, 11.0]);
    }

    #[test]
    fn fill_from_overwrites_every_element() {
        let mut dst = Matrix::filled(2, 2, 9.0);
        let src = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        dst.fill_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn fill_from_rejects_shape_mismatch() {
        let mut dst = Matrix::zeros(2, 2);
        dst.fill_from(&Matrix::zeros(4, 1));
    }

    #[test]
    fn select_rows_into_matches_allocating_variant() {
        let m = Matrix::from_fn(6, 3, |r, c| (r * 3 + c) as f32);
        let idx = [5, 0, 5, 2];
        let mut out = Matrix::filled(4, 3, -1.0);
        m.select_rows_into(&idx, &mut out);
        assert_eq!(out, m.select_rows(&idx));
    }

    #[test]
    fn select_rows_allows_repeats() {
        let m = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s.as_slice(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn reshape_preserves_order() {
        let m = Matrix::from_vec(2, 3, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let r = m.reshaped(3, 2).unwrap();
        assert_eq!(r.row(1), &[2.0, 3.0]);
        assert!(m.reshaped(4, 2).is_err());
    }

    #[test]
    fn row_vector_and_col_vector() {
        let r = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(r.shape(), (1, 3));
        let c = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(c.shape(), (3, 1));
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = Matrix::ones(2, 2);
        assert!(m.all_finite());
        m[(0, 1)] = f32::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn max_abs_diff_measures_worst_entry() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[1.5, 1.0]]).unwrap();
        assert!((a.max_abs_diff(&b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn debug_output_is_nonempty_and_truncated() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m:?}");
        assert!(s.contains("20x20"));
        assert!(s.contains("more rows"));
    }
}
