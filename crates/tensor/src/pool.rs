//! A recycling [`BufferPool`] for [`Matrix`] storage.
//!
//! The attack loop evaluates the same computation graph hundreds of times;
//! every iteration needs the same set of matrix shapes. Instead of paying
//! the allocator for each of them, a `BufferPool` shelves the backing
//! buffers of retired matrices (keyed by element count) and hands them
//! back — zero-filled or overwritten — on the next request. In steady
//! state every request is a hit and the loop performs no heap allocation
//! for value or gradient storage.
//!
//! The pool is a plain value type (no interior mutability), so it is
//! `Send + Sync` by construction and can live inside whatever owns the hot
//! loop (the autodiff tape) while the ambient [`colper_runtime`] pool runs
//! kernels in parallel.

use crate::Matrix;
use std::collections::{HashMap, VecDeque};

/// A shelf of retired `f32` buffers, keyed by exact element count.
///
/// Buffers are recycled FIFO per shelf so a loop with a fixed allocation
/// pattern sees each buffer return to the same role every iteration.
#[derive(Debug, Default)]
pub struct BufferPool {
    shelves: HashMap<usize, VecDeque<Vec<f32>>>,
    hits: u64,
    misses: u64,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    fn take_buf(&mut self, len: usize) -> Option<Vec<f32>> {
        self.shelves.get_mut(&len).and_then(VecDeque::pop_front)
    }

    /// Returns a zero-filled `rows x cols` matrix, reusing a shelved buffer
    /// of the exact length when one is available.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if len == 0 {
            return Matrix::zeros(rows, cols);
        }
        match self.take_buf(len) {
            Some(mut buf) => {
                self.hits += 1;
                colper_obs::counters::POOL_HIT.incr();
                buf.fill(0.0);
                Matrix::from_vec(rows, cols, buf).expect("pooled buffer length matches shape")
            }
            None => {
                self.misses += 1;
                colper_obs::counters::POOL_MISS.incr();
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// [`BufferPool::zeros`] with the shape of `like`.
    pub fn zeros_like(&mut self, like: &Matrix) -> Matrix {
        self.zeros(like.rows(), like.cols())
    }

    /// Returns a `rows x cols` matrix with **unspecified contents**,
    /// skipping the zero-fill of [`BufferPool::zeros`]. For scratch space
    /// that a kernel fully overwrites (e.g. matmul packing panels).
    pub fn scratch(&mut self, rows: usize, cols: usize) -> Matrix {
        let len = rows * cols;
        if len == 0 {
            return Matrix::zeros(rows, cols);
        }
        match self.take_buf(len) {
            Some(buf) => {
                self.hits += 1;
                colper_obs::counters::POOL_HIT.incr();
                Matrix::from_vec(rows, cols, buf).expect("pooled buffer length matches shape")
            }
            None => {
                self.misses += 1;
                colper_obs::counters::POOL_MISS.incr();
                Matrix::zeros(rows, cols)
            }
        }
    }

    /// Returns a copy of `src`, reusing a shelved buffer when available.
    pub fn copy_of(&mut self, src: &Matrix) -> Matrix {
        if src.is_empty() {
            return src.clone();
        }
        match self.take_buf(src.len()) {
            Some(mut buf) => {
                self.hits += 1;
                colper_obs::counters::POOL_HIT.incr();
                buf.copy_from_slice(src.as_slice());
                Matrix::from_vec(src.rows(), src.cols(), buf)
                    .expect("pooled buffer length matches shape")
            }
            None => {
                self.misses += 1;
                colper_obs::counters::POOL_MISS.incr();
                src.clone()
            }
        }
    }

    /// Shelves the backing buffer of `m` for reuse.
    pub fn recycle(&mut self, m: Matrix) {
        if m.is_empty() {
            return;
        }
        let len = m.len();
        self.shelves.entry(len).or_default().push_back(m.into_vec());
    }

    /// `(hits, misses)` counters: a hit is a request served from a shelf, a
    /// miss is a request that had to allocate. A loop whose steady state
    /// stops increasing `misses` performs no heap allocation for matrix
    /// storage.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of buffers currently shelved.
    pub fn shelved(&self) -> usize {
        self.shelves.values().map(VecDeque::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_buffer_is_reused_for_matching_length() {
        let mut pool = BufferPool::new();
        let first = pool.zeros(2, 3);
        assert_eq!(pool.stats(), (0, 1));
        pool.recycle(first);
        let second = pool.zeros(3, 2); // same element count, different shape
        assert_eq!(second.shape(), (3, 2));
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn pooled_zeros_carries_no_stale_data() {
        let mut pool = BufferPool::new();
        let mut dirty = pool.zeros(2, 2);
        dirty.as_mut_slice().fill(7.5);
        pool.recycle(dirty);
        let clean = pool.zeros(2, 2);
        assert!(clean.as_slice().iter().all(|&v| v == 0.0), "stale data survived recycling");
    }

    #[test]
    fn copy_of_fully_overwrites_recycled_storage() {
        let mut pool = BufferPool::new();
        let mut dirty = pool.zeros(1, 4);
        dirty.as_mut_slice().fill(-3.0);
        pool.recycle(dirty);
        let src = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]).unwrap();
        let copy = pool.copy_of(&src);
        assert_eq!(copy, src);
        assert_eq!(pool.stats(), (1, 1));
    }

    #[test]
    fn mismatched_length_misses_instead_of_reusing() {
        let mut pool = BufferPool::new();
        pool.recycle(Matrix::zeros(2, 2));
        let m = pool.zeros(3, 3);
        assert_eq!(m.shape(), (3, 3));
        assert_eq!(pool.stats(), (0, 1));
        assert_eq!(pool.shelved(), 1, "the 2x2 buffer stays shelved");
    }

    #[test]
    fn empty_matrices_bypass_the_pool() {
        let mut pool = BufferPool::new();
        pool.recycle(Matrix::zeros(0, 5));
        let e = pool.zeros(0, 5);
        assert_eq!(e.shape(), (0, 5));
        assert_eq!(pool.stats(), (0, 0));
        assert_eq!(pool.shelved(), 0);
    }

    #[test]
    fn shelves_are_fifo_per_length() {
        let mut pool = BufferPool::new();
        let mut a = pool.zeros(1, 2);
        a.as_mut_slice().copy_from_slice(&[1.0, 1.0]);
        let mut b = pool.zeros(1, 2);
        b.as_mut_slice().copy_from_slice(&[2.0, 2.0]);
        // Grow `b`'s capacity marker by recycling in order: a then b.
        pool.recycle(a);
        pool.recycle(b);
        // FIFO: the first taken buffer is `a`'s storage (contents are
        // overwritten, so observe via capacity-neutral copy_of).
        let src = Matrix::from_rows(&[&[9.0, 8.0]]).unwrap();
        let first = pool.copy_of(&src);
        assert_eq!(first, src);
        assert_eq!(pool.shelved(), 1);
    }

    #[test]
    fn pool_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BufferPool>();
        // And actually ship one across a thread boundary.
        let mut pool = BufferPool::new();
        pool.recycle(Matrix::zeros(2, 2));
        let handle = std::thread::spawn(move || {
            let mut pool = pool;
            let m = pool.zeros(2, 2);
            (pool.stats(), m.shape())
        });
        let (stats, shape) = handle.join().unwrap();
        assert_eq!(stats, (1, 0));
        assert_eq!(shape, (2, 2));
    }
}
