//! Seeded random initialization schemes for weight matrices.

use crate::Matrix;
use rand::distributions::{Distribution, Uniform};
use rand::Rng;

/// Weight-initialization schemes understood by [`Initializer::sample`].
///
/// The variants mirror the initializers used by the reference
/// implementations of the three segmentation networks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Initializer {
    /// All zeros (bias vectors).
    Zeros,
    /// All ones (batch-norm scales).
    Ones,
    /// A constant fill.
    Constant(f32),
    /// Uniform in `[-limit, limit]`.
    Uniform {
        /// Half-width of the symmetric interval.
        limit: f32,
    },
    /// Glorot/Xavier uniform: `limit = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
    /// He/Kaiming uniform for ReLU networks: `limit = sqrt(6 / fan_in)`.
    KaimingUniform,
    /// Zero-mean Gaussian with the given standard deviation
    /// (via Box–Muller so that only a `Uniform` sampler is needed).
    Normal {
        /// Standard deviation of the distribution.
        std: f32,
    },
}

impl Initializer {
    /// Samples a `rows x cols` matrix using the fan shape `(rows, cols)` —
    /// by convention weight matrices are `[fan_in, fan_out]`.
    pub fn sample<R: Rng + ?Sized>(self, rows: usize, cols: usize, rng: &mut R) -> Matrix {
        match self {
            Initializer::Zeros => Matrix::zeros(rows, cols),
            Initializer::Ones => Matrix::ones(rows, cols),
            Initializer::Constant(v) => Matrix::filled(rows, cols, v),
            Initializer::Uniform { limit } => sample_uniform(rows, cols, limit, rng),
            Initializer::XavierUniform => {
                let limit = (6.0 / (rows + cols).max(1) as f32).sqrt();
                sample_uniform(rows, cols, limit, rng)
            }
            Initializer::KaimingUniform => {
                let limit = (6.0 / rows.max(1) as f32).sqrt();
                sample_uniform(rows, cols, limit, rng)
            }
            Initializer::Normal { std } => {
                let unit = Uniform::new(f32::EPSILON, 1.0f32);
                Matrix::from_fn(rows, cols, |_, _| {
                    // Box–Muller transform.
                    let u1: f32 = unit.sample(rng);
                    let u2: f32 = unit.sample(rng);
                    std * (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos()
                })
            }
        }
    }
}

fn sample_uniform<R: Rng + ?Sized>(rows: usize, cols: usize, limit: f32, rng: &mut R) -> Matrix {
    if limit == 0.0 {
        return Matrix::zeros(rows, cols);
    }
    let dist = Uniform::new_inclusive(-limit, limit);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Initializer::Zeros.sample(2, 2, &mut rng).as_slice().iter().all(|&v| v == 0.0));
        assert!(Initializer::Ones.sample(2, 2, &mut rng).as_slice().iter().all(|&v| v == 1.0));
        assert!(Initializer::Constant(0.5)
            .sample(2, 2, &mut rng)
            .as_slice()
            .iter()
            .all(|&v| v == 0.5));
    }

    #[test]
    fn uniform_respects_limit() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = Initializer::Uniform { limit: 0.3 }.sample(50, 50, &mut rng);
        assert!(m.as_slice().iter().all(|&v| (-0.3..=0.3).contains(&v)));
        // Not all the same value.
        assert!(m.max().unwrap() > m.min().unwrap());
    }

    #[test]
    fn xavier_limit_scales_with_fans() {
        let mut rng = StdRng::seed_from_u64(2);
        let wide = Initializer::XavierUniform.sample(1000, 1000, &mut rng);
        let narrow = Initializer::XavierUniform.sample(4, 4, &mut rng);
        assert!(wide.max().unwrap().abs() < narrow.max().unwrap().abs() + 1.0);
        let limit = (6.0f32 / 2000.0).sqrt();
        assert!(wide.as_slice().iter().all(|&v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn kaiming_limit_uses_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Initializer::KaimingUniform.sample(24, 8, &mut rng);
        let limit = (6.0f32 / 24.0).sqrt();
        assert!(m.as_slice().iter().all(|&v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = Initializer::Normal { std: 2.0 }.sample(100, 100, &mut rng);
        let mean = m.mean();
        let var = m.map(|v| (v - mean) * (v - mean)).mean();
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn deterministic_under_same_seed() {
        let a = Initializer::XavierUniform.sample(8, 8, &mut StdRng::seed_from_u64(7));
        let b = Initializer::XavierUniform.sample(8, 8, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
