//! Const-generic, shape-typed borrows of a [`Matrix`].
//!
//! A [`ShapedCols<C>`] witnesses at the type level that a matrix has
//! exactly `C` columns: constructing one is the single fallible step, and
//! every API that consumes it gets the column count as a compile-time
//! constant. The schedule-capture entry points in `colper-models` use
//! `ShapedCols<3>` for xyz / RGB / normalized-location blocks so a
//! mis-shaped cloud is rejected with a typed error at capture time instead
//! of panicking mid-attack.

use crate::Matrix;
use std::fmt;
use std::ops::Deref;

/// A borrowed matrix verified to have exactly `C` columns.
#[derive(Debug, Clone, Copy)]
pub struct ShapedCols<'a, const C: usize>(&'a Matrix);

impl<'a, const C: usize> ShapedCols<'a, C> {
    /// Wraps `m` after checking its column count against `C`.
    pub fn new(m: &'a Matrix) -> Result<Self, ShapeMismatch> {
        if m.cols() == C {
            Ok(Self(m))
        } else {
            Err(ShapeMismatch { expected_cols: C, got: m.shape() })
        }
    }

    /// Number of rows (the verified column count is the `C` parameter).
    pub fn rows(&self) -> usize {
        self.0.rows()
    }

    /// The underlying matrix, with the original borrow lifetime.
    pub fn as_matrix(&self) -> &'a Matrix {
        self.0
    }
}

impl<const C: usize> Deref for ShapedCols<'_, C> {
    type Target = Matrix;
    fn deref(&self) -> &Matrix {
        self.0
    }
}

/// A matrix failed its compile-time column-count check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMismatch {
    /// The column count the `ShapedCols` type demanded.
    pub expected_cols: usize,
    /// The actual `(rows, cols)` of the offending matrix.
    pub got: (usize, usize),
}

impl fmt::Display for ShapeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (rows, cols) = self.got;
        write!(f, "expected a [*, {}] matrix, got [{rows}, {cols}]", self.expected_cols)
    }
}

impl std::error::Error for ShapeMismatch {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_matching_column_count() {
        let m = Matrix::zeros(4, 3);
        let s = ShapedCols::<3>::new(&m).unwrap();
        assert_eq!(s.rows(), 4);
        assert_eq!(s.as_matrix().shape(), (4, 3));
        assert_eq!(s.cols(), 3); // Deref passthrough
    }

    #[test]
    fn rejects_wrong_column_count() {
        let m = Matrix::zeros(4, 2);
        let err = ShapedCols::<3>::new(&m).unwrap_err();
        assert_eq!(err, ShapeMismatch { expected_cols: 3, got: (4, 2) });
        assert_eq!(err.to_string(), "expected a [*, 3] matrix, got [4, 2]");
    }
}
