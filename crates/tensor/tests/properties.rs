//! Property-based tests for the tensor substrate.

use colper_tensor::Matrix;
use proptest::prelude::*;

fn arb_matrix(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data).unwrap())
    })
}

fn arb_matrix_pair(max_dim: usize) -> impl Strategy<Value = (Matrix, Matrix)> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        let a = proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |d| Matrix::from_vec(r, c, d).unwrap());
        let b = proptest::collection::vec(-100.0f32..100.0, r * c)
            .prop_map(move |d| Matrix::from_vec(r, c, d).unwrap());
        (a, b)
    })
}

proptest! {
    #[test]
    fn add_commutes((a, b) in arb_matrix_pair(8)) {
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert!(ab.max_abs_diff(&ba) == 0.0);
    }

    #[test]
    fn sub_is_add_of_negation((a, b) in arb_matrix_pair(8)) {
        let direct = a.sub(&b).unwrap();
        let via_neg = a.add(&b.scale(-1.0)).unwrap();
        prop_assert!(direct.max_abs_diff(&via_neg) < 1e-4);
    }

    #[test]
    fn transpose_involution(a in arb_matrix(8)) {
        prop_assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_identity_is_noop(a in arb_matrix(8)) {
        let i = Matrix::identity(a.cols());
        let p = a.matmul(&i).unwrap();
        prop_assert!(p.max_abs_diff(&a) < 1e-4);
    }

    #[test]
    fn matmul_distributes_over_add(a in arb_matrix(6), (b, c) in arb_matrix_pair(6)) {
        // Make shapes compatible: a [m,k], b/c [k,n] by transposing b,c to fit.
        let k = a.cols();
        let b = b.reshaped(b.len() / b.cols().max(1), b.cols()).unwrap();
        // Simplest route: rebuild b and c with k rows from their data.
        let n = 3usize;
        if b.len() < k * n || c.len() < k * n {
            return Ok(());
        }
        let b = Matrix::from_vec(k, n, b.as_slice()[..k * n].to_vec()).unwrap();
        let c = Matrix::from_vec(k, n, c.as_slice()[..k * n].to_vec()).unwrap();
        let lhs = a.matmul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.matmul(&b).unwrap().add(&a.matmul(&c).unwrap()).unwrap();
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-1);
    }

    #[test]
    fn fused_transposed_products_agree(a in arb_matrix(6), b in arb_matrix(6)) {
        // matmul_tn: a^T * x for x with a.rows() rows.
        let x = Matrix::from_fn(a.rows(), 4, |r, c| (r + c) as f32 * 0.25);
        let fused = a.matmul_tn(&x).unwrap();
        let direct = a.transpose().matmul(&x).unwrap();
        prop_assert!(fused.max_abs_diff(&direct) < 1e-2);

        // matmul_nt: a * y^T for y with a.cols() cols.
        let y = Matrix::from_fn(5, b.cols().min(a.cols()).max(1), |r, c| (r * c) as f32 * 0.1);
        if y.cols() == a.cols() {
            let fused = a.matmul_nt(&y).unwrap();
            let direct = a.matmul(&y.transpose()).unwrap();
            prop_assert!(fused.max_abs_diff(&direct) < 1e-2);
        }
    }

    #[test]
    fn sum_rows_matches_manual(a in arb_matrix(8)) {
        let s = a.sum_rows();
        for c in 0..a.cols() {
            let manual: f32 = (0..a.rows()).map(|r| a[(r, c)]).sum();
            prop_assert!((s[(0, c)] - manual).abs() < 1e-2);
        }
    }

    #[test]
    fn clamp_is_idempotent(a in arb_matrix(8)) {
        let once = a.clamp(-1.0, 1.0);
        let twice = once.clamp(-1.0, 1.0);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn select_rows_matches_row(a in arb_matrix(8)) {
        let idx: Vec<usize> = (0..a.rows()).rev().collect();
        let sel = a.select_rows(&idx);
        for (dst, &src) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(dst), a.row(src));
        }
    }

    #[test]
    fn frobenius_sq_nonnegative_and_zero_iff_zero(a in arb_matrix(8)) {
        prop_assert!(a.frobenius_sq() >= 0.0);
        if a.frobenius_sq() == 0.0 {
            prop_assert!(a.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn hstack_then_block_recovers(a in arb_matrix(6)) {
        let b = a.scale(2.0);
        let h = a.hstack(&b).unwrap();
        let left = h.block(0, h.rows(), 0, a.cols());
        prop_assert_eq!(left, a);
    }
}
