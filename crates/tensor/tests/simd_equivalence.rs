//! Property tests pinning the kernel-dispatch contract: the dispatched
//! kernels must be **bit-identical** to the pinned-order scalar reference
//! on every shape — empty slices, single elements, non-multiples of the
//! 8-lane width, and matrices with zero rows or columns.
//!
//! Each case runs the dispatched entry point on both paths (scalar forced
//! via [`kernels::set_simd_enabled`], then SIMD when the host supports it)
//! and against a direct call into [`kernels::scalar`], comparing raw `f32`
//! bits rather than values so `-0.0` vs `0.0` and NaN payload differences
//! cannot hide.

use colper_tensor::kernels::{self, scalar};
use colper_tensor::{gemm_mode, set_gemm_mode, GemmMode, Matrix};
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard};

/// Serializes tests that flip the process-global dispatch mode.
static PATH_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    PATH_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Runs `f` with SIMD forced off, then (when supported) forced on, and
/// returns both bit dumps; the caller asserts they agree with each other
/// and with the direct scalar-reference result.
fn on_both_paths(f: impl Fn() -> Vec<u32>) -> (Vec<u32>, Option<Vec<u32>>) {
    let _guard = lock();
    let was = kernels::simd_active();
    kernels::set_simd_enabled(false);
    let scalar_path = f();
    let simd_path = if kernels::simd_supported() {
        kernels::set_simd_enabled(true);
        Some(f())
    } else {
        None
    };
    kernels::set_simd_enabled(was);
    (scalar_path, simd_path)
}

fn arb_vec(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    (0..=max_len).prop_flat_map(|n| proptest::collection::vec(-100.0f32..100.0, n))
}

/// Runs `f` under every (SIMD leg, GEMM kernel) combination the host
/// supports — scalar / AVX2 / AVX-512, each with the row kernel forced and
/// with the tiled kernel forced — and returns the labelled bit dumps. The
/// first entry is always the scalar row-kernel reference; callers assert
/// every other leg matches it bit for bit.
fn on_all_gemm_legs(f: impl Fn() -> Vec<u32>) -> Vec<(String, Vec<u32>)> {
    let _guard = lock();
    let was_simd = kernels::simd_active();
    let was_512 = kernels::avx512_active();
    let was_mode = gemm_mode();
    let mut runs = Vec::new();
    for (simd, avx512) in [(false, false), (true, false), (true, true)] {
        if simd && !kernels::simd_supported() {
            continue;
        }
        if avx512 && !kernels::avx512_supported() {
            continue;
        }
        kernels::set_simd_enabled(simd);
        kernels::set_avx512_enabled(avx512);
        for mode in [GemmMode::Row, GemmMode::Tiled] {
            set_gemm_mode(mode);
            runs.push((format!("simd={simd} avx512={avx512} mode={mode:?}"), f()));
        }
    }
    kernels::set_simd_enabled(was_simd);
    kernels::set_avx512_enabled(was_512);
    set_gemm_mode(was_mode);
    runs
}

proptest! {
    #[test]
    fn zip_kernels_match_scalar_reference(a in arb_vec(70), b in arb_vec(70)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let reference = {
            let mut bits_out = Vec::new();
            let mut out = vec![f32::NAN; n];
            scalar::add(a, b, &mut out);
            bits_out.extend(bits(&out));
            scalar::sub(a, b, &mut out);
            bits_out.extend(bits(&out));
            scalar::mul(a, b, &mut out);
            bits_out.extend(bits(&out));
            scalar::div(a, b, &mut out);
            bits_out.extend(bits(&out));
            scalar::mul_add(a, b, b, &mut out);
            bits_out.extend(bits(&out));
            scalar::scale(a, -2.625, &mut out);
            bits_out.extend(bits(&out));
            bits_out
        };
        let run = || {
            let mut bits_out = Vec::new();
            let mut out = vec![f32::NAN; n];
            kernels::add(a, b, &mut out);
            bits_out.extend(bits(&out));
            kernels::sub(a, b, &mut out);
            bits_out.extend(bits(&out));
            kernels::mul(a, b, &mut out);
            bits_out.extend(bits(&out));
            kernels::div(a, b, &mut out);
            bits_out.extend(bits(&out));
            kernels::mul_add(a, b, b, &mut out);
            bits_out.extend(bits(&out));
            kernels::scale(a, -2.625, &mut out);
            bits_out.extend(bits(&out));
            bits_out
        };
        let (scalar_path, simd_path) = on_both_paths(run);
        prop_assert_eq!(&scalar_path, &reference);
        if let Some(simd_path) = simd_path {
            prop_assert_eq!(&simd_path, &reference);
        }
    }

    #[test]
    fn accumulating_kernels_match_scalar_reference(a in arb_vec(70), b in arb_vec(70)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let reference = {
            let mut d = a.to_vec();
            scalar::add_assign(&mut d, b);
            scalar::sub_assign(&mut d, a);
            scalar::mul_assign(&mut d, b);
            scalar::axpy(&mut d, 0.6875, a);
            scalar::add_prod_assign(&mut d, a, b);
            scalar::sub_prod_assign(&mut d, b, a);
            scalar::scale_assign(&mut d, -0.375);
            bits(&d)
        };
        let run = || {
            let mut d = a.to_vec();
            kernels::add_assign(&mut d, b);
            kernels::sub_assign(&mut d, a);
            kernels::mul_assign(&mut d, b);
            kernels::axpy(&mut d, 0.6875, a);
            kernels::add_prod_assign(&mut d, a, b);
            kernels::sub_prod_assign(&mut d, b, a);
            kernels::scale_assign(&mut d, -0.375);
            bits(&d)
        };
        let (scalar_path, simd_path) = on_both_paths(run);
        prop_assert_eq!(&scalar_path, &reference);
        if let Some(simd_path) = simd_path {
            prop_assert_eq!(&simd_path, &reference);
        }
    }

    #[test]
    fn reductions_match_scalar_reference(a in arb_vec(200), b in arb_vec(200)) {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let reference =
            vec![scalar::sum(a).to_bits(), scalar::dot(a, b).to_bits(), scalar::sum_sq(a).to_bits()];
        let run =
            || vec![kernels::sum(a).to_bits(), kernels::dot(a, b).to_bits(), kernels::sum_sq(a).to_bits()];
        let (scalar_path, simd_path) = on_both_paths(run);
        prop_assert_eq!(&scalar_path, &reference);
        if let Some(simd_path) = simd_path {
            prop_assert_eq!(&simd_path, &reference);
        }
    }

    #[test]
    fn tanh_matches_scalar_reference(a in arb_vec(70)) {
        let reference = {
            let mut out = vec![f32::NAN; a.len()];
            scalar::tanh(&a, &mut out);
            bits(&out)
        };
        let run = || {
            let mut out = vec![f32::NAN; a.len()];
            kernels::tanh(&a, &mut out);
            bits(&out)
        };
        let (scalar_path, simd_path) = on_both_paths(run);
        prop_assert_eq!(&scalar_path, &reference);
        if let Some(simd_path) = simd_path {
            prop_assert_eq!(&simd_path, &reference);
        }
    }

    #[test]
    fn matmul_row_matches_scalar_reference(
        k in 0usize..24,
        n in 0usize..40,
        seed in -3.0f32..3.0,
    ) {
        let a_row: Vec<f32> = (0..k).map(|i| ((i as f32) * 0.71 + seed).sin() * 2.0).collect();
        let b: Vec<f32> = (0..k * n).map(|i| ((i as f32) * 0.37 - seed).cos() * 1.5).collect();
        let reference = {
            let mut out = vec![0.25f32; n];
            scalar::matmul_row(&a_row, &b, n, &mut out);
            bits(&out)
        };
        let run = || {
            let mut out = vec![0.25f32; n];
            kernels::matmul_row(&a_row, &b, n, &mut out);
            bits(&out)
        };
        let (scalar_path, simd_path) = on_both_paths(run);
        prop_assert_eq!(&scalar_path, &reference);
        if let Some(simd_path) = simd_path {
            prop_assert_eq!(&simd_path, &reference);
        }
    }

    /// The three matmul variants, transpose and elementwise tanh at the
    /// `Matrix` level — including zero-row and zero-column operands — must
    /// not depend on which dispatch path ran them.
    #[test]
    fn matrix_ops_bit_identical_across_paths(
        m in 0usize..10,
        k in 0usize..10,
        n in 0usize..10,
        seed in -2.0f32..2.0,
    ) {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 7 + c) as f32 * 0.43 + seed).sin());
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c) as f32 * 0.29 - seed).cos());
        let bt = b.transpose();
        let at = a.transpose();
        let run = || {
            let mut out = Vec::new();
            out.extend(bits(a.matmul(&b).unwrap().as_slice()));
            out.extend(bits(at.matmul_tn(&b).unwrap().as_slice()));
            out.extend(bits(a.matmul_nt(&bt).unwrap().as_slice()));
            out.extend(bits(a.tanh().as_slice()));
            out.extend(bits(a.transpose().as_slice()));
            out.push(a.sum().to_bits());
            out.push(a.frobenius_sq().to_bits());
            out
        };
        let (scalar_path, simd_path) = on_both_paths(run);
        if let Some(simd_path) = simd_path {
            prop_assert_eq!(&simd_path, &scalar_path);
        }
    }

    /// The tiled GEMM — on every ISA leg — must reproduce the scalar row
    /// kernel bit for bit on ragged shapes: dimensions that are not
    /// multiples of the 6x16 / 12x32 micro-tiles, zero-dimension operands,
    /// and single-row matrices. `matmul_tn` shares the packed-transpose
    /// path, so it rides along.
    #[test]
    fn tiled_gemm_bit_identical_to_row_kernel_on_ragged_shapes(
        m in 0usize..40,
        k in 0usize..48,
        n in 0usize..40,
        seed in -2.0f32..2.0,
    ) {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 7 + c) as f32 * 0.43 + seed).sin());
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c) as f32 * 0.29 - seed).cos());
        let at = a.transpose();
        let runs = on_all_gemm_legs(|| {
            let mut out = Vec::new();
            out.extend(bits(a.matmul(&b).unwrap().as_slice()));
            out.extend(bits(at.matmul_tn(&b).unwrap().as_slice()));
            out
        });
        let (ref_label, reference) = &runs[0];
        prop_assert!(ref_label.contains("simd=false"));
        for (label, run) in &runs[1..] {
            prop_assert_eq!(run, reference, "leg {} diverged from {}", label, ref_label);
        }
    }

    /// Batched GEMM over a shape bucket must be bit-identical to the
    /// per-cloud matmul loop on every leg — including counts of 0 and 1
    /// (which take the looped path) and ragged per-cloud shapes.
    #[test]
    fn batched_gemm_matches_per_cloud_loop(
        count in 0usize..5,
        m in 0usize..24,
        k in 0usize..24,
        n in 0usize..24,
        seed in -2.0f32..2.0,
    ) {
        let clouds: Vec<Matrix> = (0..count)
            .map(|i| Matrix::from_fn(m, k, |r, c| ((r * 11 + c * 3 + i) as f32 * 0.31 + seed).sin()))
            .collect();
        let b = Matrix::from_fn(k, n, |r, c| ((r * 5 + c) as f32 * 0.29 - seed).cos());
        let runs = on_all_gemm_legs(|| {
            let refs: Vec<&Matrix> = clouds.iter().collect();
            let mut outs = vec![Matrix::zeros(m, n); count];
            Matrix::matmul_batched_into(&refs, &b, &mut outs).unwrap();
            let mut out = Vec::new();
            for (cloud, batched) in clouds.iter().zip(&outs) {
                let looped = cloud.matmul(&b).unwrap();
                assert_eq!(
                    bits(batched.as_slice()),
                    bits(looped.as_slice()),
                    "batched result diverged from the per-cloud loop"
                );
                out.extend(bits(batched.as_slice()));
            }
            out
        });
        let (ref_label, reference) = &runs[0];
        for (label, run) in &runs[1..] {
            prop_assert_eq!(run, reference, "leg {} diverged from {}", label, ref_label);
        }
    }
}

/// One deterministic shape that crosses every blocking boundary at once:
/// `m = 211` spans three `MC = 96` bands (the last one partial), `k = 519`
/// spans three `KC = 256` panels (exercising the accumulate-into-C reload
/// at `pc > 0`), and `n = 67` leaves partial-column micro-tiles on every
/// leg. All legs and both kernels must agree bit for bit.
#[test]
fn tiled_gemm_crosses_band_and_panel_boundaries() {
    let (m, k, n) = (211, 519, 67);
    let a = Matrix::from_fn(m, k, |r, c| ((r * 13 + c) as f32 * 0.017).sin());
    let b = Matrix::from_fn(k, n, |r, c| ((r * 3 + c) as f32 * 0.023).cos());
    let at = a.transpose();
    let runs = on_all_gemm_legs(|| {
        let mut out = Vec::new();
        out.extend(bits(a.matmul(&b).unwrap().as_slice()));
        out.extend(bits(at.matmul_tn(&b).unwrap().as_slice()));
        out
    });
    let (ref_label, reference) = &runs[0];
    for (label, run) in &runs[1..] {
        assert_eq!(run, reference, "leg {label} diverged from {ref_label}");
    }
}
