//! Converting a [`PointCloud`] into the tensors a model consumes, and
//! binding them onto a tape.

use crate::GeometryPlan;
use colper_autodiff::{Tape, Var};
use colper_geom::Point3;
use colper_scene::{normalize, PointCloud};
use colper_tensor::Matrix;

/// The pre-computed tensors of one (already model-normalized) point
/// cloud: everything a forward pass needs, off-tape.
#[derive(Debug, Clone, PartialEq)]
pub struct CloudTensors {
    /// Point positions (used for graph building and as xyz features).
    pub coords: Vec<Point3>,
    /// `[N, 3]` xyz features (same numbers as `coords`).
    pub xyz: Matrix,
    /// `[N, 3]` RGB features in `[0, 1]`.
    pub colors: Matrix,
    /// `[N, 3]` normalized location in the cloud's bounding box — the
    /// last three of S3DIS's nine per-point features.
    pub loc01: Matrix,
    /// Ground-truth labels.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub num_classes: usize,
}

impl CloudTensors {
    /// Builds the tensor view of a cloud.
    pub fn from_cloud(cloud: &PointCloud) -> Self {
        Self {
            coords: cloud.coords.clone(),
            xyz: cloud.coords_matrix(),
            colors: cloud.colors_matrix(),
            loc01: normalize::location01(cloud),
            labels: cloud.labels.clone(),
            num_classes: cloud.num_classes,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.coords.len()
    }

    /// Whether the cloud is empty.
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
}

/// How the color block binds onto the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColorBinding {
    /// Differentiable leaf — the attack reads `tape.grad(input.color)`.
    Leaf,
    /// Constant — training and plain inference.
    Constant,
}

/// The on-tape view of one cloud, as passed to
/// [`crate::SegmentationModel::forward`].
///
/// `color` may be *any* tape variable of shape `[N, 3]` — in particular
/// the attack's tanh-reparameterized perturbed colors — while `coords`
/// stays off-tape for graph construction.
#[derive(Debug, Clone, Copy)]
pub struct ModelInput<'a> {
    /// Positions for k-NN / sampling (never differentiated).
    pub coords: &'a [Point3],
    /// `[N, 3]` xyz feature variable.
    pub xyz: Var,
    /// `[N, 3]` color feature variable.
    pub color: Var,
    /// `[N, 3]` normalized-location feature variable.
    pub loc: Var,
    /// Pre-computed geometry for this (model, cloud) pair. `None` makes
    /// the forward pass rebuild the structures on the fly — same code
    /// path, same results, just slower.
    pub plan: Option<&'a GeometryPlan>,
}

/// Binds a [`CloudTensors`] onto `tape`, choosing how the color block is
/// tracked. Returns the input plus the color [`Var`] (identical to
/// `input.color`, returned for symmetry with custom bindings).
pub fn bind_input<'a>(
    tape: &mut Tape,
    tensors: &'a CloudTensors,
    color: ColorBinding,
) -> ModelInput<'a> {
    let xyz = tape.constant(tensors.xyz.clone());
    let color = match color {
        ColorBinding::Leaf => tape.leaf(tensors.colors.clone()),
        ColorBinding::Constant => tape.constant(tensors.colors.clone()),
    };
    let loc = tape.constant(tensors.loc01.clone());
    ModelInput { coords: &tensors.coords, xyz, color, loc, plan: None }
}

/// Like [`bind_input`], but attaches a pre-computed [`GeometryPlan`] so
/// the forward pass skips coordinate-structure construction. The plan
/// must have been built by the same model for the same cloud.
pub fn bind_input_planned<'a>(
    tape: &mut Tape,
    tensors: &'a CloudTensors,
    color: ColorBinding,
    plan: &'a GeometryPlan,
) -> ModelInput<'a> {
    let mut input = bind_input(tape, tensors, color);
    input.plan = Some(plan);
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use colper_scene::{IndoorSceneConfig, SceneGenerator};

    fn sample() -> CloudTensors {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(0);
        CloudTensors::from_cloud(&cloud)
    }

    #[test]
    fn tensors_have_consistent_shapes() {
        let t = sample();
        assert_eq!(t.len(), 128);
        assert_eq!(t.xyz.shape(), (128, 3));
        assert_eq!(t.colors.shape(), (128, 3));
        assert_eq!(t.loc01.shape(), (128, 3));
        assert_eq!(t.labels.len(), 128);
    }

    #[test]
    fn xyz_matches_coords() {
        let t = sample();
        for (i, p) in t.coords.iter().enumerate() {
            assert_eq!(t.xyz[(i, 0)], p.x);
            assert_eq!(t.xyz[(i, 2)], p.z);
        }
    }

    #[test]
    fn leaf_binding_is_differentiable() {
        let t = sample();
        let mut tape = Tape::new();
        let input = bind_input(&mut tape, &t, ColorBinding::Leaf);
        let s = tape.sum(input.color);
        tape.backward(s);
        assert!(tape.grad(input.color).is_some());
    }

    #[test]
    fn constant_binding_is_not_differentiable() {
        let t = sample();
        let mut tape = Tape::new();
        let input = bind_input(&mut tape, &t, ColorBinding::Constant);
        // xyz and loc are always constants too.
        let mixed = tape.leaf(Matrix::ones(t.len(), 3));
        let y = tape.mul(input.color, mixed);
        let s = tape.sum(y);
        tape.backward(s);
        assert!(tape.grad(input.color).is_none());
    }
}
