//! RandLA-Net (Hu et al., 2020): efficient large-scale segmentation via
//! random sampling, local spatial encoding and attentive pooling.
//!
//! Each encoder stage aggregates neighborhoods with an *attentive*
//! pooling (learned per-channel softmax weights over the k neighbors)
//! after encoding relative positions, then randomly downsamples —
//! random sampling being the mechanism that gives RandLA-Net its
//! reported 200x preprocessing speedup over FPS-based pipelines. The
//! decoder upsamples with nearest-neighbor interpolation and skip
//! connections.

use crate::plan::{plan_randlanet, resolve_plan};
use crate::{GeometryPlan, ModelInput, SegmentationModel};
use colper_autodiff::Var;
use colper_geom::{random_sample, subset_knn_graph, subset_nearest, Point3};
use colper_nn::{Activation, Dropout, Forward, Linear, ParamSet, SharedMlp};
use rand::rngs::StdRng;
use rand::Rng;

/// Architecture hyper-parameters for [`RandLaNet`].
#[derive(Debug, Clone, PartialEq)]
pub struct RandLaNetConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Encoder stages as `(points_after_downsampling, channels)`.
    pub stages: Vec<(usize, usize)>,
    /// Neighbors per point for local spatial encoding.
    pub k: usize,
    /// Stem width before the first stage.
    pub stem: usize,
    /// Dropout probability in the head.
    pub dropout: f32,
}

impl RandLaNetConfig {
    /// A paper-scale configuration (four stages, as the pre-trained
    /// network; intended for large point budgets).
    pub fn paper(num_classes: usize) -> Self {
        Self {
            num_classes,
            stages: vec![(10240, 16), (2560, 64), (640, 128), (160, 256)],
            k: 16,
            stem: 8,
            dropout: 0.5,
        }
    }

    /// A CPU-friendly two-stage configuration used by the experiment
    /// harness (512-point clouds).
    pub fn small(num_classes: usize) -> Self {
        Self { num_classes, stages: vec![(128, 32), (32, 64)], k: 8, stem: 16, dropout: 0.3 }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny(num_classes: usize) -> Self {
        Self { num_classes, stages: vec![(32, 16)], k: 6, stem: 8, dropout: 0.2 }
    }

    fn validate(&self) {
        assert!(!self.stages.is_empty(), "RandLaNetConfig: needs at least one stage");
        assert!(self.k >= 2, "RandLaNetConfig: k must be at least 2");
        assert!(self.stem >= 1, "RandLaNetConfig: stem width must be positive");
        assert!(self.num_classes >= 2, "RandLaNetConfig: needs >= 2 classes");
        for w in self.stages.iter().map(|s| s.1) {
            assert!(w >= 2 && w % 2 == 0, "RandLaNetConfig: stage channels must be even");
        }
    }
}

#[derive(Debug)]
struct Stage {
    /// Encodes the 10-dim relative-position block.
    locse: SharedMlp,
    /// Produces the per-channel attention scores.
    score: Linear,
    /// Post-aggregation transform to the stage width.
    out_mlp: SharedMlp,
    /// Residual shortcut from the stage input width.
    shortcut: Linear,
}

/// The RandLA-Net segmentation network.
#[derive(Debug)]
pub struct RandLaNet {
    config: RandLaNetConfig,
    params: ParamSet,
    stem: SharedMlp,
    stages: Vec<Stage>,
    dec_mlps: Vec<SharedMlp>,
    head: SharedMlp,
    head_out: Linear,
    dropout: Dropout,
}

const INPUT_FEATURES: usize = 9;
/// xyz_i, xyz_j, xyz_j - xyz_i, ||xyz_i - xyz_j||.
const RELPOS_FEATURES: usize = 10;

impl RandLaNet {
    /// Builds the network, registering all parameters.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent.
    pub fn new<R: Rng + ?Sized>(config: RandLaNetConfig, rng: &mut R) -> Self {
        config.validate();
        let mut params = ParamSet::new();
        let stem = SharedMlp::new(
            &mut params,
            "stem",
            &[INPUT_FEATURES, config.stem],
            Activation::LeakyRelu,
            true,
            rng,
        );
        let mut stages = Vec::with_capacity(config.stages.len());
        let mut c_in = config.stem;
        for (i, &(_, c_out)) in config.stages.iter().enumerate() {
            let half = c_out / 2;
            let locse = SharedMlp::new(
                &mut params,
                &format!("stage{i}.locse"),
                &[RELPOS_FEATURES, half],
                Activation::LeakyRelu,
                true,
                rng,
            );
            let edge_dim = c_in + half;
            let score = Linear::new(
                &mut params,
                &format!("stage{i}.score"),
                edge_dim,
                edge_dim,
                false,
                rng,
            );
            let out_mlp = SharedMlp::new(
                &mut params,
                &format!("stage{i}.out"),
                &[edge_dim, c_out],
                Activation::LeakyRelu,
                true,
                rng,
            );
            let shortcut =
                Linear::new(&mut params, &format!("stage{i}.sc"), c_in, c_out, false, rng);
            stages.push(Stage { locse, score, out_mlp, shortcut });
            c_in = c_out;
        }
        // Decoder: from coarsest back up; at level i it sees the current
        // features plus the encoder skip of the finer level.
        let mut dec_mlps = Vec::with_capacity(config.stages.len());
        let mut cur_c = c_in;
        for j in 0..config.stages.len() {
            let fine_level = config.stages.len() - 1 - j;
            let skip_c =
                if fine_level == 0 { config.stem } else { config.stages[fine_level - 1].1 };
            let out_c = skip_c.max(16);
            dec_mlps.push(SharedMlp::new(
                &mut params,
                &format!("dec{j}"),
                &[cur_c + skip_c, out_c],
                Activation::LeakyRelu,
                true,
                rng,
            ));
            cur_c = out_c;
        }
        let head =
            SharedMlp::new(&mut params, "head", &[cur_c, cur_c], Activation::LeakyRelu, true, rng);
        let head_out = Linear::new(&mut params, "head.out", cur_c, config.num_classes, true, rng);
        let dropout = Dropout::new(config.dropout);
        Self { config, params, stem, stages, dec_mlps, head, head_out, dropout }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &RandLaNetConfig {
        &self.config
    }

    /// One local-spatial-encoding + attentive-pooling aggregation at a
    /// fixed resolution, over pre-computed neighborhoods (`nb` and
    /// `center_flat` are flattened `[len * k]` level-local indices).
    #[allow(clippy::too_many_arguments)]
    fn aggregate(
        &self,
        session: &mut Forward<'_>,
        stage: &Stage,
        nb: &[usize],
        center_flat: &[usize],
        xyz: Var,
        h: Var,
        k: usize,
    ) -> Var {
        // Relative position encoding (Eq. 1 of RandLA-Net).
        let xyz_j = session.tape.gather_rows(xyz, nb);
        let xyz_i = session.tape.gather_rows(xyz, center_flat);
        let rel = session.tape.sub(xyz_j, xyz_i);
        let rel_sq = session.tape.square(rel);
        let d2 = session.tape.sum_cols(rel_sq);
        let d2e = session.tape.add_scalar(d2, 1e-6);
        let dist = session.tape.sqrt(d2e);
        let relpos = session.tape.concat_cols_all(&[xyz_i, xyz_j, rel, dist]);
        let pos_enc = stage.locse.forward(session, relpos);

        // Attentive pooling: learned per-channel softmax over neighbors.
        let feats_j = session.tape.gather_rows(h, nb);
        let edge = session.tape.concat_cols(feats_j, pos_enc);
        let scores = stage.score.forward(session, edge);
        let attn = session.tape.group_softmax(scores, k);
        let weighted = session.tape.mul(attn, edge);
        let mean = session.tape.group_mean(weighted, k);
        let summed = session.tape.scale(mean, k as f32);

        let out = stage.out_mlp.forward(session, summed);
        let sc = stage.shortcut.forward(session, h);
        let res = session.tape.add(out, sc);
        session.tape.leaky_relu(res, 0.2)
    }
}

impl SegmentationModel for RandLaNet {
    fn name(&self) -> &str {
        "randla-net"
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn deterministic_eval(&self) -> bool {
        // Random downsampling draws from `rng` on every pass, even in
        // evaluation mode — the recorded graph differs step to step, so
        // static-schedule capture must not freeze it.
        false
    }

    fn forward(&self, session: &mut Forward<'_>, input: &ModelInput<'_>, rng: &mut StdRng) -> Var {
        let _span = colper_obs::span!(FORWARD_RANDLA);
        let n = input.coords.len();
        assert!(n > 0, "RandLaNet: empty input");
        let built;
        let plan = resolve_plan!(
            input,
            built,
            RandLa,
            plan_randlanet(&self.config, input.coords),
            "RandLaNet"
        );
        let k = plan.k;

        let feats0 = session.tape.concat_cols_all(&[input.xyz, input.color, input.loc]);
        let mut h = self.stem.forward(session, feats0);

        // Random downsampling is per-pass state, so coarse levels track
        // which *original* indices survive; their neighborhoods come from
        // filtered queries against the cached full-resolution kd-tree.
        let mut orig_lv: Vec<Vec<usize>> = vec![(0..n).collect()];
        let mut xyz_lv: Vec<Var> = vec![input.xyz];
        let mut skip_feats: Vec<Var> = vec![h];

        // Encoder: aggregate then randomly downsample.
        for (s, stage) in self.stages.iter().enumerate() {
            let _span = colper_obs::span!(FORWARD_RANDLA_STAGE);
            let cur_len = orig_lv[s].len();
            let k_lv = k.min(cur_len);
            let nb_built: Vec<usize>;
            let center_built: Vec<usize>;
            let (nb, center_flat): (&[usize], &[usize]) = if s == 0 {
                (&plan.knn0[..], &plan.center_flat0[..])
            } else {
                nb_built = subset_knn_graph(&plan.tree, &orig_lv[s], k_lv);
                center_built = (0..cur_len).flat_map(|i| std::iter::repeat_n(i, k_lv)).collect();
                (&nb_built, &center_built)
            };
            let agg = self.aggregate(session, stage, nb, center_flat, xyz_lv[s], h, k_lv);
            let m = self.config.stages[s].0.min(cur_len);
            let keep = random_sample(cur_len, m, rng);
            let next_orig: Vec<usize> = keep.iter().map(|&i| orig_lv[s][i]).collect();
            let next_xyz = session.tape.gather_rows(xyz_lv[s], &keep);
            h = session.tape.gather_rows(agg, &keep);
            orig_lv.push(next_orig);
            xyz_lv.push(next_xyz);
            skip_feats.push(h);
        }

        // Decoder: nearest-neighbor upsampling with skip connections.
        for (j, dec) in self.dec_mlps.iter().enumerate() {
            let _span = colper_obs::span!(FORWARD_RANDLA_DECODER);
            let fine = self.config.stages.len() - 1 - j;
            let queries: Vec<Point3> = orig_lv[fine].iter().map(|&i| input.coords[i]).collect();
            let idx = subset_nearest(&plan.tree, &orig_lv[fine + 1], &queries);
            let w = vec![1.0f32; idx.len()];
            let up = session.tape.weighted_gather(h, &idx, &w, 1);
            let cat = session.tape.concat_cols(up, skip_feats[fine]);
            h = dec.forward(session, cat);
        }

        let hh = self.head.forward(session, h);
        let hh = self.dropout.forward(session, hh, rng);
        self.head_out.forward(session, hh)
    }

    fn plan(&self, coords: &[Point3]) -> GeometryPlan {
        GeometryPlan::RandLa(plan_randlanet(&self.config, coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bind_input, CloudTensors, ColorBinding};
    use colper_scene::{normalize, OutdoorSceneConfig, SceneGenerator};
    use rand::SeedableRng;

    fn sample_tensors(n: usize) -> CloudTensors {
        let cloud = SceneGenerator::outdoor(OutdoorSceneConfig::with_points(n)).generate(2);
        let mut rng = StdRng::seed_from_u64(99);
        CloudTensors::from_cloud(&normalize::randla_view(&cloud, n, &mut rng))
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = sample_tensors(128);
        let model = RandLaNet::new(RandLaNetConfig::tiny(8), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        let v = session.tape.value(logits);
        assert_eq!(v.shape(), (128, 8));
        assert!(v.all_finite());
    }

    #[test]
    fn color_gradient_flows_to_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = sample_tensors(96);
        let model = RandLaNet::new(RandLaNetConfig::tiny(8), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Leaf);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        let g = session.tape.grad(input.color).expect("color gradient");
        assert!(g.frobenius() > 0.0);
    }

    #[test]
    fn two_stage_config_works() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_tensors(256);
        let model = RandLaNet::new(RandLaNetConfig::small(8), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        assert_eq!(session.tape.value(logits).shape(), (256, 8));
    }

    #[test]
    fn training_mode_produces_param_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = sample_tensors(64);
        let model = RandLaNet::new(RandLaNetConfig::tiny(8), &mut rng);
        let mut session = Forward::new(model.params(), true);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        assert!(!session.collect_grads().is_empty());
    }

    #[test]
    fn random_sampling_makes_forward_stochastic() {
        let mut build_rng = StdRng::seed_from_u64(4);
        let t = sample_tensors(128);
        let model = RandLaNet::new(RandLaNetConfig::tiny(8), &mut build_rng);
        let run = |seed: u64| {
            let mut rng = StdRng::seed_from_u64(seed);
            crate::logits_of(&model, &t, &mut rng)
        };
        assert_eq!(run(7), run(7), "same rng seed must reproduce");
        assert_ne!(run(7), run(8), "different sampling should change logits");
    }

    #[test]
    #[should_panic(expected = "channels must be even")]
    fn config_validation() {
        let mut bad = RandLaNetConfig::tiny(8);
        bad.stages[0].1 = 15;
        let _ = RandLaNet::new(bad, &mut StdRng::seed_from_u64(0));
    }
}
