//! Rust re-implementations of the three point-cloud semantic-segmentation
//! networks the COLPER paper attacks.
//!
//! | Model | Family | Defining mechanism reproduced here |
//! |---|---|---|
//! | [`PointNet2`] | hierarchical set CNN | farthest-point-sampled set abstraction (ball query + shared MLP + max pool) and 3-NN feature propagation |
//! | [`ResGcn`] | graph CNN (DeepGCN) | dilated k-NN edge convolution with residual connections, stackable to the paper's 28 blocks |
//! | [`RandLaNet`] | random-sampling aggregation | random downsampling, local spatial encoding and attentive pooling, nearest-neighbor upsampling |
//!
//! All three implement [`SegmentationModel`]: a pure forward pass over a
//! [`colper_nn::Forward`] session that maps per-point features (xyz +
//! RGB + normalized location — the nine S3DIS features) to per-point
//! class logits. Because inputs are tape variables, the same forward pass
//! serves training (parameter gradients), inference, and the attack
//! (input-color gradients).
//!
//! Widths and depths default to CPU-friendly values; the paper-scale
//! configurations are available via `Config::paper()` constructors.
//!
//! # Example
//!
//! ```
//! use colper_models::{CloudTensors, PointNet2, PointNet2Config, predict};
//! use colper_scene::{IndoorSceneConfig, SceneGenerator};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(256)).generate(1);
//! let tensors = CloudTensors::from_cloud(&cloud);
//! let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
//! let preds = predict(&model, &tensors, &mut rng);
//! assert_eq!(preds.len(), 256);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod capture;
mod input;
mod persist;
mod plan;
mod pointnet2;
mod randlanet;
mod resgcn;
mod train;
mod traits;

pub use capture::{CaptureError, CaptureShapes};
pub use input::{bind_input, bind_input_planned, CloudTensors, ColorBinding, ModelInput};
pub use persist::{load_model, save_pointnet2, save_randlanet, save_resgcn, LoadedModel};
pub use plan::{GeometryPlan, PointNet2Plan, RandLaPlan, ResGcnPlan};
pub use pointnet2::{PointNet2, PointNet2Config};
pub use randlanet::{RandLaNet, RandLaNetConfig};
pub use resgcn::{ResGcn, ResGcnConfig};
pub use train::{train_model, TrainConfig, TrainReport};
pub use traits::{
    evaluate_on, evaluate_on_planned, logits_of, logits_of_planned, predict, predict_planned,
    SegmentationModel,
};
