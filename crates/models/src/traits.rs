//! The [`SegmentationModel`] trait and inference helpers.

use crate::{bind_input, bind_input_planned, CloudTensors, ColorBinding, GeometryPlan, ModelInput};
use colper_autodiff::Var;
use colper_geom::Point3;
use colper_nn::{Forward, ParamSet};
use colper_tensor::Matrix;
use rand::rngs::StdRng;

/// A point-cloud semantic-segmentation network.
///
/// Implementations are pure with respect to the session: `forward`
/// records operations onto `session.tape` and returns the `[N, classes]`
/// logits variable. Parameter gradients appear when the session is in
/// training mode; input gradients appear whenever the caller bound an
/// input as a leaf (the attack's color variable).
///
/// `Sync` is a supertrait so a shared `&M` can drive concurrent forward
/// passes on the [`colper_runtime`] worker pool (batched attacks, parallel
/// gradient samples); model state is read-only during inference.
pub trait SegmentationModel: Sync {
    /// Short human-readable model name (`"pointnet++"`, `"resgcn-28"`, …).
    fn name(&self) -> &str;

    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// The model's parameter store.
    fn params(&self) -> &ParamSet;

    /// Mutable access to the parameter store (training, weight loading).
    fn params_mut(&mut self) -> &mut ParamSet;

    /// Records the forward pass, returning per-point logits
    /// `[N, num_classes]`.
    ///
    /// `rng` drives dropout (training) and any stochastic pooling the
    /// architecture uses (RandLA-Net's random sampling).
    fn forward(&self, session: &mut Forward<'_>, input: &ModelInput<'_>, rng: &mut StdRng) -> Var;

    /// Whether an evaluation-mode forward pass is a pure function of its
    /// input — recording the identical op stream and consuming no
    /// randomness every time.
    ///
    /// Deterministic models are eligible for static-schedule capture (the
    /// attack compiles their graph once and replays it). RandLA-Net
    /// overrides this to `false`: its random point sampling draws from
    /// `rng` even in evaluation mode, so a frozen replay would both skew
    /// the caller's RNG stream and pin one sampling forever.
    fn deterministic_eval(&self) -> bool {
        true
    }

    /// Pre-computes every coordinate-only structure the forward pass
    /// needs for `coords` (FPS centroids, ball queries, k-NN graphs, …).
    ///
    /// The returned plan is valid for any number of forward passes over
    /// the same coordinates — attach it via
    /// [`crate::bind_input_planned`] or [`ModelInput::plan`]. Planned
    /// and plan-free passes produce bit-identical logits.
    fn plan(&self, coords: &[Point3]) -> GeometryPlan;
}

/// Runs an evaluation-mode forward pass and returns the logits matrix.
pub fn logits_of<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    rng: &mut StdRng,
) -> Matrix {
    let mut session = Forward::new(model.params(), false);
    let input = bind_input(&mut session.tape, tensors, ColorBinding::Constant);
    let logits = model.forward(&mut session, &input, rng);
    session.tape.value(logits).clone()
}

/// Runs an evaluation-mode forward pass and returns the predicted label
/// per point.
pub fn predict<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    rng: &mut StdRng,
) -> Vec<usize> {
    logits_of(model, tensors, rng).argmax_rows()
}

/// Point accuracy of the model on one cloud.
pub fn evaluate_on<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    rng: &mut StdRng,
) -> f32 {
    let preds = predict(model, tensors, rng);
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(&tensors.labels).filter(|(p, l)| p == l).count();
    correct as f32 / preds.len() as f32
}

/// [`logits_of`] with a pre-computed geometry plan.
pub fn logits_of_planned<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    plan: &GeometryPlan,
    rng: &mut StdRng,
) -> Matrix {
    let mut session = Forward::new(model.params(), false);
    let input = bind_input_planned(&mut session.tape, tensors, ColorBinding::Constant, plan);
    let logits = model.forward(&mut session, &input, rng);
    session.tape.value(logits).clone()
}

/// [`predict`] with a pre-computed geometry plan.
pub fn predict_planned<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    plan: &GeometryPlan,
    rng: &mut StdRng,
) -> Vec<usize> {
    logits_of_planned(model, tensors, plan, rng).argmax_rows()
}

/// [`evaluate_on`] with a pre-computed geometry plan.
pub fn evaluate_on_planned<M: SegmentationModel + ?Sized>(
    model: &M,
    tensors: &CloudTensors,
    plan: &GeometryPlan,
    rng: &mut StdRng,
) -> f32 {
    let preds = predict_planned(model, tensors, plan, rng);
    if preds.is_empty() {
        return 0.0;
    }
    let correct = preds.iter().zip(&tensors.labels).filter(|(p, l)| p == l).count();
    correct as f32 / preds.len() as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PointNet2, PointNet2Config};
    use colper_scene::{IndoorSceneConfig, SceneGenerator};
    use rand::SeedableRng;

    #[test]
    fn helpers_agree_on_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(128)).generate(3);
        let t = CloudTensors::from_cloud(&cloud);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let logits = logits_of(&model, &t, &mut rng);
        assert_eq!(logits.shape(), (128, 13));
        let preds = predict(&model, &t, &mut rng);
        assert_eq!(preds.len(), 128);
        assert!(preds.iter().all(|&p| p < 13));
        let acc = evaluate_on(&model, &t, &mut rng);
        assert!((0.0..=1.0).contains(&acc));
    }
}
