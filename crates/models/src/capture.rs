//! Shape-checked entry points for static-schedule capture.
//!
//! Before the attack freezes a recorded graph into a `TapeSchedule`, the
//! tensors that parameterize the capture — cloud coordinates, original
//! colors, normalized locations — are validated here through the
//! const-generic [`ShapedCols`] wrapper from `colper-tensor`. Each block
//! must be `[n, 3]` for the same `n`; a mismatch is a typed
//! [`CaptureError`] at capture time, not a panic halfway through a
//! replayed attack step.

use colper_tensor::{Matrix, ShapeMismatch, ShapedCols};
use std::fmt;

/// The three `[n, 3]` blocks a schedule capture is keyed on, with their
/// shapes proven by construction.
#[derive(Debug, Clone, Copy)]
pub struct CaptureShapes<'a> {
    /// Cloud coordinates (the plan's interned xyz).
    pub xyz: ShapedCols<'a, 3>,
    /// The unperturbed colors the attack distance term references.
    pub colors: ShapedCols<'a, 3>,
    /// Normalized room-location features.
    pub loc: ShapedCols<'a, 3>,
}

impl<'a> CaptureShapes<'a> {
    /// Validates the capture inputs for an `n`-point cloud.
    pub fn check(
        n: usize,
        xyz: &'a Matrix,
        colors: &'a Matrix,
        loc: &'a Matrix,
    ) -> Result<Self, CaptureError> {
        let wrap = |which: &'static str, m: &'a Matrix| {
            let shaped =
                ShapedCols::<3>::new(m).map_err(|err| CaptureError::Block { which, err })?;
            if shaped.rows() != n {
                return Err(CaptureError::RowMismatch { which, got: shaped.rows(), expected: n });
            }
            Ok(shaped)
        };
        Ok(Self { xyz: wrap("xyz", xyz)?, colors: wrap("colors", colors)?, loc: wrap("loc", loc)? })
    }
}

/// A capture input failed shape validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureError {
    /// A block is not `[*, 3]`.
    Block {
        /// Which capture input failed (`"xyz"`, `"colors"`, `"loc"`).
        which: &'static str,
        /// The underlying column-count mismatch.
        err: ShapeMismatch,
    },
    /// A block has the right width but the wrong number of points.
    RowMismatch {
        /// Which capture input failed.
        which: &'static str,
        /// Rows the block actually has.
        got: usize,
        /// Rows the cloud has.
        expected: usize,
    },
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Block { which, err } => write!(f, "capture {which}: {err}"),
            CaptureError::RowMismatch { which, got, expected } => {
                write!(f, "capture {which}: {got} rows for a {expected}-point cloud")
            }
        }
    }
}

impl std::error::Error for CaptureError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_consistent_blocks() {
        let m = Matrix::zeros(5, 3);
        let shapes = CaptureShapes::check(5, &m, &m, &m).unwrap();
        assert_eq!(shapes.xyz.rows(), 5);
        assert_eq!(shapes.colors.rows(), 5);
        assert_eq!(shapes.loc.rows(), 5);
    }

    #[test]
    fn rejects_wrong_width() {
        let good = Matrix::zeros(5, 3);
        let bad = Matrix::zeros(5, 4);
        let err = CaptureShapes::check(5, &good, &bad, &good).unwrap_err();
        assert_eq!(
            err,
            CaptureError::Block {
                which: "colors",
                err: ShapeMismatch { expected_cols: 3, got: (5, 4) }
            }
        );
        assert_eq!(err.to_string(), "capture colors: expected a [*, 3] matrix, got [5, 4]");
    }

    #[test]
    fn rejects_wrong_point_count() {
        let good = Matrix::zeros(5, 3);
        let short = Matrix::zeros(4, 3);
        let err = CaptureShapes::check(5, &good, &good, &short).unwrap_err();
        assert_eq!(err, CaptureError::RowMismatch { which: "loc", got: 4, expected: 5 });
        assert_eq!(err.to_string(), "capture loc: 4 rows for a 5-point cloud");
    }
}
