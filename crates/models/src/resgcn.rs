//! ResGCN (DeepGCN, Li et al., 2019): deep graph convolution with
//! residual connections and dilated k-NN.
//!
//! Each block is an edge convolution over a dilated k-NN graph:
//! for every point `i` and neighbor `j`, the edge feature
//! `[h_i, h_j - h_i]` passes through a shared MLP and is max-pooled over
//! the neighborhood; a residual connection adds the block input back.
//! Residuals are what let the original network reach 28 blocks — the
//! depth the paper's pre-trained ResGCN-28 uses, available here via
//! [`ResGcnConfig::paper`].

use crate::plan::{plan_resgcn, resolve_plan};
use crate::{GeometryPlan, ModelInput, SegmentationModel};
use colper_autodiff::Var;
use colper_geom::Point3;
use colper_nn::{Activation, Dropout, Forward, Linear, ParamSet, SharedMlp};
use rand::rngs::StdRng;
use rand::Rng;

/// Architecture hyper-parameters for [`ResGcn`].
#[derive(Debug, Clone, PartialEq)]
pub struct ResGcnConfig {
    /// Number of output classes.
    pub num_classes: usize,
    /// Number of residual edge-convolution blocks.
    pub blocks: usize,
    /// Channel width of every block.
    pub channels: usize,
    /// Neighbors per point (the pre-trained model uses k = 16).
    pub k: usize,
    /// Cap on the dilation schedule (block `b` uses dilation
    /// `1 + b % max_dilation`).
    pub max_dilation: usize,
    /// Dropout probability in the head (the paper's model uses 0.3).
    pub dropout: f32,
}

impl ResGcnConfig {
    /// The paper's pre-trained configuration: 28 blocks, 64 channels,
    /// k = 16, 0.3 dropout (ResGCN-28).
    pub fn paper(num_classes: usize) -> Self {
        Self { num_classes, blocks: 28, channels: 64, k: 16, max_dilation: 4, dropout: 0.3 }
    }

    /// A CPU-friendly configuration used by the experiment harness.
    pub fn small(num_classes: usize) -> Self {
        Self { num_classes, blocks: 5, channels: 32, k: 8, max_dilation: 3, dropout: 0.3 }
    }

    /// A minimal configuration for unit tests.
    pub fn tiny(num_classes: usize) -> Self {
        Self { num_classes, blocks: 2, channels: 16, k: 6, max_dilation: 2, dropout: 0.2 }
    }

    fn validate(&self) {
        assert!(self.blocks >= 1, "ResGcnConfig: needs at least one block");
        assert!(self.channels >= 1, "ResGcnConfig: needs at least one channel");
        assert!(self.k >= 2, "ResGcnConfig: k must be at least 2");
        assert!(self.max_dilation >= 1, "ResGcnConfig: max_dilation must be positive");
        assert!(self.num_classes >= 2, "ResGcnConfig: needs >= 2 classes");
    }
}

/// The ResGCN (DeepGCN) segmentation network.
#[derive(Debug)]
pub struct ResGcn {
    config: ResGcnConfig,
    params: ParamSet,
    stem: SharedMlp,
    edge_mlps: Vec<SharedMlp>,
    head: SharedMlp,
    head_out: Linear,
    dropout: Dropout,
    display_name: String,
}

const INPUT_FEATURES: usize = 9;

impl ResGcn {
    /// Builds the network, registering all parameters.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent.
    pub fn new<R: Rng + ?Sized>(config: ResGcnConfig, rng: &mut R) -> Self {
        config.validate();
        let mut params = ParamSet::new();
        let c = config.channels;
        let stem = SharedMlp::new(
            &mut params,
            "stem",
            &[INPUT_FEATURES, c],
            Activation::LeakyRelu,
            true,
            rng,
        );
        let edge_mlps = (0..config.blocks)
            .map(|b| {
                SharedMlp::new(
                    &mut params,
                    &format!("block{b}.edge"),
                    &[2 * c, c],
                    Activation::LeakyRelu,
                    true,
                    rng,
                )
            })
            .collect();
        // Head sees the final features plus a broadcast global context.
        let head =
            SharedMlp::new(&mut params, "head", &[2 * c, c], Activation::LeakyRelu, true, rng);
        let head_out = Linear::new(&mut params, "head.out", c, config.num_classes, true, rng);
        let dropout = Dropout::new(config.dropout);
        let display_name = format!("resgcn-{}", config.blocks);
        Self { config, params, stem, edge_mlps, head, head_out, dropout, display_name }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &ResGcnConfig {
        &self.config
    }
}

impl SegmentationModel for ResGcn {
    fn name(&self) -> &str {
        &self.display_name
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, session: &mut Forward<'_>, input: &ModelInput<'_>, rng: &mut StdRng) -> Var {
        let _span = colper_obs::span!(FORWARD_RESGCN);
        let n = input.coords.len();
        assert!(n > 0, "ResGcn: empty input");
        let built;
        let plan =
            resolve_plan!(input, built, ResGcn, plan_resgcn(&self.config, input.coords), "ResGcn");
        let k = plan.k;

        let feats0 = session.tape.concat_cols_all(&[input.xyz, input.color, input.loc]);
        let mut h = self.stem.forward(session, feats0);

        for (b, edge_mlp) in self.edge_mlps.iter().enumerate() {
            let _span = colper_obs::span!(FORWARD_RESGCN_BLOCK);
            let nb = plan.graphs[plan.dilations[b]].as_ref().expect("graph precomputed");
            let x_j = session.tape.gather_rows_shared(h, nb.clone());
            let x_i = session.tape.gather_rows_shared(h, plan.center_flat.clone());
            let diff = session.tape.sub(x_j, x_i);
            let edge = session.tape.concat_cols(x_i, diff);
            let msg = edge_mlp.forward(session, edge);
            let agg = session.tape.group_max(msg, k);
            // Residual connection: the mechanism that makes 28 blocks
            // trainable.
            h = session.tape.add(h, agg);
        }

        // Global context: mean over points, broadcast back to each point.
        let global = session.tape.mean_rows(h);
        let global_rep = session.tape.gather_rows_shared(global, plan.global_rep.clone());
        let with_ctx = session.tape.concat_cols(h, global_rep);
        let hh = self.head.forward(session, with_ctx);
        let hh = self.dropout.forward(session, hh, rng);
        self.head_out.forward(session, hh)
    }

    fn plan(&self, coords: &[Point3]) -> GeometryPlan {
        GeometryPlan::ResGcn(plan_resgcn(&self.config, coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bind_input, CloudTensors, ColorBinding};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
    use rand::SeedableRng;

    fn sample_tensors(n: usize) -> CloudTensors {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(n)).generate(8);
        CloudTensors::from_cloud(&normalize::resgcn_view(&cloud))
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = sample_tensors(128);
        let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
        assert_eq!(model.name(), "resgcn-2");
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        let v = session.tape.value(logits);
        assert_eq!(v.shape(), (128, 13));
        assert!(v.all_finite());
    }

    #[test]
    fn color_gradient_flows_to_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = sample_tensors(96);
        let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Leaf);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        let g = session.tape.grad(input.color).expect("color gradient");
        assert!(g.frobenius() > 0.0);
    }

    #[test]
    fn paper_depth_constructs() {
        // 28 blocks must at least build and produce the right shapes
        // (kept small in N to stay fast).
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_tensors(64);
        let cfg = ResGcnConfig { channels: 8, k: 4, ..ResGcnConfig::paper(13) };
        let model = ResGcn::new(cfg, &mut rng);
        assert_eq!(model.name(), "resgcn-28");
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        assert_eq!(session.tape.value(logits).shape(), (64, 13));
        assert!(session.tape.value(logits).all_finite());
    }

    #[test]
    fn training_mode_produces_param_grads() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = sample_tensors(64);
        let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), true);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        assert!(!session.collect_grads().is_empty());
    }

    #[test]
    fn handles_tiny_clouds() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = sample_tensors(4); // fewer points than k
        let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        assert_eq!(session.tape.value(logits).rows(), 4);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn config_validation() {
        let mut bad = ResGcnConfig::tiny(13);
        bad.k = 1;
        let _ = ResGcn::new(bad, &mut StdRng::seed_from_u64(0));
    }
}
