//! The geometry-plan cache layer.
//!
//! Every structure a forward pass derives from point *coordinates* alone
//! — FPS centroids, ball-query groupings and 3-NN interpolation weights
//! (PointNet++), dilated k-NN graphs (ResGCN), the full-resolution k-NN
//! graph and kd-tree (RandLA-Net) — is a pure function of the cloud's
//! coordinates and the model configuration. COLPER perturbs only colors,
//! so during an attack (hundreds of iterations × gradient samples over
//! one cloud) these structures never change; recomputing them every
//! forward pass dominated the step time.
//!
//! A [`GeometryPlan`] is computed once per (model, cloud) via
//! [`crate::SegmentationModel::plan`] and threaded through
//! [`crate::ModelInput`]. Forward passes *always* consume a plan —
//! building one on the fly when the caller did not supply one — so the
//! planned and plan-free paths execute identical code and produce
//! bit-identical logits.
//!
//! RandLA-Net's random downsampling is per-pass state and is **not**
//! cached; its coarse-level graphs are instead answered by filtered
//! queries against the cached full-resolution kd-tree
//! ([`colper_geom::subset_knn_graph`] / [`colper_geom::subset_nearest`]).

use crate::{PointNet2Config, RandLaNetConfig, ResGcnConfig};
use colper_geom::{
    ball_query, dilated_knn, farthest_point_sampling, knn_graph, three_nn_weights, KdTree, Point3,
};
use std::sync::Arc;

/// Pre-computed coordinate-only structures for one (model config, cloud)
/// pair. Obtain one from [`crate::SegmentationModel::plan`]; the variant
/// always matches the model that built it.
#[derive(Debug)]
pub enum GeometryPlan {
    /// Plan for [`crate::PointNet2`].
    PointNet2(PointNet2Plan),
    /// Plan for [`crate::ResGcn`].
    ResGcn(ResGcnPlan),
    /// Plan for [`crate::RandLaNet`].
    RandLa(RandLaPlan),
}

impl GeometryPlan {
    /// Number of points of the cloud the plan was built for.
    pub fn num_points(&self) -> usize {
        match self {
            GeometryPlan::PointNet2(p) => p.n,
            GeometryPlan::ResGcn(p) => p.n,
            GeometryPlan::RandLa(p) => p.n,
        }
    }

    /// The model family the plan was built for (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            GeometryPlan::PointNet2(_) => "pointnet++",
            GeometryPlan::ResGcn(_) => "resgcn",
            GeometryPlan::RandLa(_) => "randla-net",
        }
    }
}

/// One feature-propagation level's interpolation payload: 3-NN indices
/// and matching inverse-distance weights, `Arc`-interned for sharing
/// with the tape.
pub(crate) type InterpLevel = (Arc<[usize]>, Arc<[f32]>);

/// One set-abstraction level of a [`PointNet2Plan`].
///
/// Index lists are `Arc`-interned so each forward pass shares them with
/// the tape instead of copying them into every recorded gather op.
#[derive(Debug)]
pub struct PointNet2SaLevel {
    /// FPS-selected centroid indices into the level's point set.
    pub(crate) centroid_idx: Arc<[usize]>,
    /// Flattened `[m * k]` ball-query neighbor indices.
    pub(crate) neighbors: Arc<[usize]>,
    /// Flattened `[m * k]` centroid index repeated per neighbor slot.
    pub(crate) center_flat: Arc<[usize]>,
    /// Neighbors per ball at this level.
    pub(crate) k: usize,
}

/// Cached geometry for a PointNet++ forward pass: per-SA-level FPS
/// centroids and ball-query groupings, per-FP-level 3-NN interpolation
/// indices and weights.
#[derive(Debug)]
pub struct PointNet2Plan {
    pub(crate) n: usize,
    pub(crate) sa: Vec<PointNet2SaLevel>,
    /// Per FP level (coarsest first): 3-NN indices and inverse-distance
    /// weights interpolating coarse features onto the finer level.
    pub(crate) fp: Vec<InterpLevel>,
}

pub(crate) fn plan_pointnet2(config: &PointNet2Config, coords: &[Point3]) -> PointNet2Plan {
    assert!(!coords.is_empty(), "PointNet2: empty input");
    let levels = config.sa_npoints.len();
    let mut coords_lv: Vec<Vec<Point3>> = vec![coords.to_vec()];
    let mut sa = Vec::with_capacity(levels);
    for i in 0..levels {
        let cur = &coords_lv[i];
        let m = config.sa_npoints[i].min(cur.len());
        let centroid_idx = farthest_point_sampling(cur, m, 0);
        let centroids: Vec<Point3> = centroid_idx.iter().map(|&j| cur[j]).collect();
        let k = config.sa_k[i];
        let neighbors = ball_query(cur, &centroids, config.sa_radii[i], k);
        let center_flat: Vec<usize> =
            centroid_idx.iter().flat_map(|&c| std::iter::repeat_n(c, k)).collect();
        sa.push(PointNet2SaLevel {
            centroid_idx: centroid_idx.into(),
            neighbors: neighbors.into(),
            center_flat: center_flat.into(),
            k,
        });
        coords_lv.push(centroids);
    }
    let mut fp = Vec::with_capacity(levels);
    for j in 0..levels {
        let fine = levels - 1 - j;
        let (idx, w) = three_nn_weights(&coords_lv[fine + 1], &coords_lv[fine]);
        fp.push((idx.into(), w.into()));
    }
    PointNet2Plan { n: coords.len(), sa, fp }
}

/// Cached geometry for a ResGCN forward pass: one dilated k-NN graph per
/// distinct dilation in the block schedule.
#[derive(Debug)]
pub struct ResGcnPlan {
    pub(crate) n: usize,
    /// Effective neighbor count (`config.k` capped at the cloud size).
    pub(crate) k: usize,
    /// Dilation used by each block (`1 + b % max_dilation`).
    pub(crate) dilations: Vec<usize>,
    /// `graphs[d]` is the dilated k-NN graph for dilation `d`.
    pub(crate) graphs: Vec<Option<Arc<[usize]>>>,
    /// Flattened `[n * k]` center indices for edge grouping.
    pub(crate) center_flat: Arc<[usize]>,
    /// `[n]` zeros: gathers the global mean row back onto every point.
    pub(crate) global_rep: Arc<[usize]>,
}

pub(crate) fn plan_resgcn(config: &ResGcnConfig, coords: &[Point3]) -> ResGcnPlan {
    assert!(!coords.is_empty(), "ResGcn: empty input");
    let n = coords.len();
    let k = config.k.min(n);
    let dilations: Vec<usize> = (0..config.blocks).map(|b| 1 + b % config.max_dilation).collect();
    let mut graphs: Vec<Option<Arc<[usize]>>> = vec![None; config.max_dilation + 1];
    for &d in &dilations {
        if graphs[d].is_none() {
            graphs[d] = Some(dilated_knn(coords, k, d).into());
        }
    }
    let center_flat: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, k)).collect();
    ResGcnPlan {
        n,
        k,
        dilations,
        graphs,
        center_flat: center_flat.into(),
        global_rep: vec![0usize; n].into(),
    }
}

/// Cached geometry for a RandLA-Net forward pass: the full-resolution
/// kd-tree and k-NN graph. Coarse levels depend on the per-pass random
/// downsampling and are answered at forward time by filtered queries
/// against `tree`.
#[derive(Debug)]
pub struct RandLaPlan {
    pub(crate) n: usize,
    /// Effective neighbor count (`config.k` capped at the cloud size).
    pub(crate) k: usize,
    /// kd-tree over the full-resolution cloud, shared by every level.
    pub(crate) tree: KdTree,
    /// Full-resolution `[n * k]` k-NN graph (stage 0's neighborhoods).
    pub(crate) knn0: Arc<[usize]>,
    /// Flattened `[n * k]` center indices for stage 0.
    pub(crate) center_flat0: Arc<[usize]>,
}

pub(crate) fn plan_randlanet(config: &RandLaNetConfig, coords: &[Point3]) -> RandLaPlan {
    assert!(!coords.is_empty(), "RandLaNet: empty input");
    let n = coords.len();
    let k = config.k.min(n);
    let tree = KdTree::build(coords);
    let knn0 = knn_graph(coords, k);
    let center_flat0: Vec<usize> = (0..n).flat_map(|i| std::iter::repeat_n(i, k)).collect();
    RandLaPlan { n, k, tree, knn0: knn0.into(), center_flat0: center_flat0.into() }
}

/// Resolves the plan a forward pass will consume: the caller-supplied
/// one after a consistency check, or a freshly built fallback. Used by
/// every model so planned and plan-free passes share one code path.
macro_rules! resolve_plan {
    ($input:expr, $storage:ident, $variant:ident, $build:expr, $model:literal) => {
        match $input.plan {
            Some(crate::GeometryPlan::$variant(p)) => {
                assert_eq!(
                    p.n,
                    $input.coords.len(),
                    concat!($model, ": plan built for a different cloud size"),
                );
                p
            }
            Some(other) => {
                panic!(concat!($model, ": plan built for a different model ({})"), other.kind())
            }
            None => {
                $storage = $build;
                &$storage
            }
        }
    };
}
pub(crate) use resolve_plan;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_coords(n: usize, seed: u64) -> Vec<Point3> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                Point3::new(
                    rng.gen_range(0.0..3.0),
                    rng.gen_range(0.0..3.0),
                    rng.gen_range(0.0..3.0),
                )
            })
            .collect()
    }

    #[test]
    fn pointnet2_plan_shapes() {
        let cfg = PointNet2Config::tiny(13);
        let coords = random_coords(96, 0);
        let p = plan_pointnet2(&cfg, &coords);
        assert_eq!(p.n, 96);
        assert_eq!(p.sa.len(), 1);
        assert_eq!(p.sa[0].centroid_idx.len(), 32);
        assert_eq!(p.sa[0].neighbors.len(), 32 * cfg.sa_k[0]);
        assert_eq!(p.sa[0].center_flat.len(), 32 * cfg.sa_k[0]);
        assert_eq!(p.fp.len(), 1);
        // 3-NN interpolation back to full resolution.
        assert_eq!(p.fp[0].0.len(), 96 * 3);
    }

    #[test]
    fn resgcn_plan_builds_one_graph_per_distinct_dilation() {
        let cfg = ResGcnConfig::tiny(13); // 2 blocks, max_dilation 2
        let coords = random_coords(64, 1);
        let p = plan_resgcn(&cfg, &coords);
        assert_eq!(p.dilations, vec![1, 2]);
        assert!(p.graphs[1].is_some() && p.graphs[2].is_some());
        assert_eq!(p.graphs[1].as_ref().unwrap().len(), 64 * p.k);
        assert_eq!(p.center_flat.len(), 64 * p.k);
    }

    #[test]
    fn randla_plan_caches_full_resolution_structures() {
        let cfg = RandLaNetConfig::tiny(8);
        let coords = random_coords(80, 2);
        let p = plan_randlanet(&cfg, &coords);
        assert_eq!(p.tree.len(), 80);
        assert_eq!(&p.knn0[..], &knn_graph(&coords, p.k)[..]);
        assert_eq!(p.center_flat0.len(), 80 * p.k);
    }

    #[test]
    fn plan_kind_and_points_roundtrip() {
        let coords = random_coords(32, 3);
        let plan = GeometryPlan::ResGcn(plan_resgcn(&ResGcnConfig::tiny(13), &coords));
        assert_eq!(plan.kind(), "resgcn");
        assert_eq!(plan.num_points(), 32);
    }
}
