//! PointNet++ (Qi et al., 2017): hierarchical set abstraction and feature
//! propagation.

use crate::plan::{plan_pointnet2, resolve_plan};
use crate::{GeometryPlan, ModelInput, SegmentationModel};
use colper_autodiff::Var;
use colper_geom::Point3;
use colper_nn::{Activation, Dropout, Forward, Linear, ParamSet, SharedMlp};
use rand::rngs::StdRng;
use rand::Rng;

/// Architecture hyper-parameters for [`PointNet2`].
///
/// Input features are the nine S3DIS features (xyz, RGB, normalized
/// location); each set-abstraction (SA) level selects `sa_npoints[i]`
/// centroids by farthest point sampling, groups `sa_k[i]` neighbors
/// within `sa_radii[i]`, and runs a shared MLP with widths
/// `sa_widths[i]` followed by max pooling. Feature propagation (FP)
/// levels mirror the SA levels with 3-NN inverse-distance interpolation.
#[derive(Debug, Clone, PartialEq)]
pub struct PointNet2Config {
    /// Number of output classes.
    pub num_classes: usize,
    /// Centroid counts per SA level (decreasing).
    pub sa_npoints: Vec<usize>,
    /// Ball-query radii per SA level (in normalized `[0,3]` coordinates).
    pub sa_radii: Vec<f32>,
    /// Neighbors per ball per SA level.
    pub sa_k: Vec<usize>,
    /// Shared-MLP hidden widths per SA level.
    pub sa_widths: Vec<Vec<usize>>,
    /// Shared-MLP hidden widths per FP level, in application order
    /// (coarsest first).
    pub fp_widths: Vec<Vec<usize>>,
    /// Width of the segmentation head's hidden layer.
    pub head_width: usize,
    /// Dropout probability in the head.
    pub dropout: f32,
}

impl PointNet2Config {
    /// The paper-faithful configuration: four SA and four FP levels, as
    /// the pre-trained model the paper attacks ("4 abstraction layers and
    /// 4 feature propagation layers").
    pub fn paper(num_classes: usize) -> Self {
        Self {
            num_classes,
            sa_npoints: vec![1024, 256, 64, 16],
            sa_radii: vec![0.3, 0.6, 1.2, 2.4],
            sa_k: vec![32, 32, 32, 32],
            sa_widths: vec![
                vec![32, 32, 64],
                vec![64, 64, 128],
                vec![128, 128, 256],
                vec![256, 256, 512],
            ],
            fp_widths: vec![vec![256, 256], vec![256, 256], vec![256, 128], vec![128, 128, 128]],
            head_width: 128,
            dropout: 0.5,
        }
    }

    /// A CPU-friendly two-level configuration used by the experiment
    /// harness (512-point clouds).
    pub fn small(num_classes: usize) -> Self {
        Self {
            num_classes,
            sa_npoints: vec![128, 32],
            sa_radii: vec![0.45, 1.0],
            sa_k: vec![16, 16],
            sa_widths: vec![vec![32, 32], vec![64, 64]],
            fp_widths: vec![vec![64, 48], vec![48, 48]],
            head_width: 48,
            dropout: 0.3,
        }
    }

    /// A minimal configuration for unit tests (256-point clouds).
    pub fn tiny(num_classes: usize) -> Self {
        Self {
            num_classes,
            sa_npoints: vec![32],
            sa_radii: vec![0.8],
            sa_k: vec![8],
            sa_widths: vec![vec![16, 16]],
            fp_widths: vec![vec![16, 16]],
            head_width: 16,
            dropout: 0.2,
        }
    }

    fn validate(&self) {
        let l = self.sa_npoints.len();
        assert!(l >= 1, "PointNet2Config: needs at least one SA level");
        assert_eq!(self.sa_radii.len(), l, "PointNet2Config: sa_radii length");
        assert_eq!(self.sa_k.len(), l, "PointNet2Config: sa_k length");
        assert_eq!(self.sa_widths.len(), l, "PointNet2Config: sa_widths length");
        assert_eq!(self.fp_widths.len(), l, "PointNet2Config: fp_widths length");
        assert!(self.num_classes >= 2, "PointNet2Config: needs >= 2 classes");
    }
}

/// The PointNet++ segmentation network.
#[derive(Debug)]
pub struct PointNet2 {
    config: PointNet2Config,
    params: ParamSet,
    sa_mlps: Vec<SharedMlp>,
    fp_mlps: Vec<SharedMlp>,
    head: SharedMlp,
    head_out: Linear,
    dropout: Dropout,
}

/// Width of the input feature block (xyz + RGB + normalized location).
const INPUT_FEATURES: usize = 9;

impl PointNet2 {
    /// Builds the network, registering all parameters.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is inconsistent.
    pub fn new<R: Rng + ?Sized>(config: PointNet2Config, rng: &mut R) -> Self {
        config.validate();
        let mut params = ParamSet::new();
        let levels = config.sa_npoints.len();

        // Per-level channel widths: lvl_c[0] is the raw input width.
        let mut lvl_c = vec![INPUT_FEATURES];
        let mut sa_mlps = Vec::with_capacity(levels);
        for (i, widths) in config.sa_widths.iter().enumerate() {
            let in_dim = 3 + lvl_c[i]; // relative xyz + grouped features
            let mut dims = vec![in_dim];
            dims.extend_from_slice(widths);
            sa_mlps.push(SharedMlp::new(
                &mut params,
                &format!("sa{i}"),
                &dims,
                Activation::Relu,
                true,
                rng,
            ));
            lvl_c.push(*widths.last().expect("non-empty widths"));
        }

        // FP levels, coarsest-first.
        let mut fp_mlps = Vec::with_capacity(levels);
        let mut cur_c = lvl_c[levels];
        for (j, widths) in config.fp_widths.iter().enumerate() {
            let skip_level = levels - 1 - j;
            let in_dim = cur_c + lvl_c[skip_level];
            let mut dims = vec![in_dim];
            dims.extend_from_slice(widths);
            fp_mlps.push(SharedMlp::new(
                &mut params,
                &format!("fp{j}"),
                &dims,
                Activation::Relu,
                true,
                rng,
            ));
            cur_c = *widths.last().expect("non-empty widths");
        }

        let head = SharedMlp::new(
            &mut params,
            "head",
            &[cur_c, config.head_width],
            Activation::Relu,
            true,
            rng,
        );
        let head_out =
            Linear::new(&mut params, "head.out", config.head_width, config.num_classes, true, rng);
        let dropout = Dropout::new(config.dropout);
        Self { config, params, sa_mlps, fp_mlps, head, head_out, dropout }
    }

    /// The configuration the model was built with.
    pub fn config(&self) -> &PointNet2Config {
        &self.config
    }
}

impl SegmentationModel for PointNet2 {
    fn name(&self) -> &str {
        "pointnet++"
    }

    fn num_classes(&self) -> usize {
        self.config.num_classes
    }

    fn params(&self) -> &ParamSet {
        &self.params
    }

    fn params_mut(&mut self) -> &mut ParamSet {
        &mut self.params
    }

    fn forward(&self, session: &mut Forward<'_>, input: &ModelInput<'_>, rng: &mut StdRng) -> Var {
        let _span = colper_obs::span!(FORWARD_POINTNET2);
        let levels = self.config.sa_npoints.len();
        let n = input.coords.len();
        assert!(n > 0, "PointNet2: empty input");
        let built;
        let plan = resolve_plan!(
            input,
            built,
            PointNet2,
            plan_pointnet2(&self.config, input.coords),
            "PointNet2"
        );

        let feats0 = session.tape.concat_cols_all(&[input.xyz, input.color, input.loc]);
        // Per-level handles live on the stack (not in Vecs) so the
        // steady-state pass performs zero heap allocations; slots past
        // `levels` hold unused copies of the level-0 handles.
        const MAX_LEVELS: usize = 8;
        assert!(levels <= MAX_LEVELS, "PointNet2: at most {MAX_LEVELS} SA levels supported");
        let mut xyz_lv = [input.xyz; MAX_LEVELS + 1];
        let mut feats_lv = [feats0; MAX_LEVELS + 1];

        // Set abstraction: downsample and aggregate. Index lists are
        // interned in the plan and shared with the tape (no per-pass copy).
        for (i, sa) in plan.sa.iter().enumerate() {
            let _span = colper_obs::span!(FORWARD_POINTNET2_SA);
            let nb_xyz = session.tape.gather_rows_shared(xyz_lv[i], sa.neighbors.clone());
            let ctr_xyz = session.tape.gather_rows_shared(xyz_lv[i], sa.center_flat.clone());
            let rel = session.tape.sub(nb_xyz, ctr_xyz);
            let nb_feats = session.tape.gather_rows_shared(feats_lv[i], sa.neighbors.clone());
            let grouped = session.tape.concat_cols(rel, nb_feats);
            let h = self.sa_mlps[i].forward(session, grouped);
            let pooled = session.tape.group_max(h, sa.k);

            let next_xyz = session.tape.gather_rows_shared(xyz_lv[i], sa.centroid_idx.clone());
            xyz_lv[i + 1] = next_xyz;
            feats_lv[i + 1] = pooled;
        }

        // Feature propagation: interpolate back up with skip connections.
        let mut cur = feats_lv[levels];
        for (j, fp) in self.fp_mlps.iter().enumerate() {
            let _span = colper_obs::span!(FORWARD_POINTNET2_FP);
            let fine = levels - 1 - j;
            let (idx, w) = &plan.fp[j];
            let interp = session.tape.weighted_gather_shared(cur, idx.clone(), w.clone(), 3);
            let h = session.tape.concat_cols(interp, feats_lv[fine]);
            cur = fp.forward(session, h);
        }

        let h = self.head.forward(session, cur);
        let h = self.dropout.forward(session, h, rng);
        self.head_out.forward(session, h)
    }

    fn plan(&self, coords: &[Point3]) -> GeometryPlan {
        GeometryPlan::PointNet2(plan_pointnet2(&self.config, coords))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{bind_input, CloudTensors, ColorBinding};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
    use rand::SeedableRng;

    fn sample_tensors(n: usize) -> CloudTensors {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(n)).generate(5);
        CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let mut rng = StdRng::seed_from_u64(0);
        let t = sample_tensors(256);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        let v = session.tape.value(logits);
        assert_eq!(v.shape(), (256, 13));
        assert!(v.all_finite());
    }

    #[test]
    fn color_gradient_flows_to_input() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = sample_tensors(128);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Leaf);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        let g = session.tape.grad(input.color).expect("color gradient");
        assert_eq!(g.shape(), (128, 3));
        assert!(g.frobenius() > 0.0, "color gradient should be non-zero");
    }

    #[test]
    fn training_mode_produces_param_grads() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = sample_tensors(128);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), true);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        let grads = session.collect_grads();
        assert!(grads.len() > 5, "expected grads for most params, got {}", grads.len());
    }

    #[test]
    fn two_level_config_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = sample_tensors(256);
        let model = PointNet2::new(PointNet2Config::small(13), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        assert_eq!(session.tape.value(logits).shape(), (256, 13));
    }

    #[test]
    fn handles_fewer_points_than_centroids() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = sample_tensors(16); // fewer than the 32 centroids of tiny()
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let mut session = Forward::new(model.params(), false);
        let input = bind_input(&mut session.tape, &t, ColorBinding::Constant);
        let logits = model.forward(&mut session, &input, &mut rng);
        assert_eq!(session.tape.value(logits).rows(), 16);
    }

    #[test]
    #[should_panic(expected = "sa_radii length")]
    fn config_validation() {
        let mut bad = PointNet2Config::tiny(13);
        bad.sa_radii.clear();
        let _ = PointNet2::new(bad, &mut StdRng::seed_from_u64(0));
    }
}
