//! Generic in-process training of segmentation models on synthetic
//! scenes — this is how the reproduction obtains its "pre-trained"
//! networks.

use crate::{bind_input_planned, CloudTensors, ColorBinding, GeometryPlan, SegmentationModel};
use colper_nn::{Adam, Forward};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// Hyper-parameters for [`train_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training clouds.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Stop early once training accuracy reaches this level.
    pub target_accuracy: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 12, lr: 0.01, target_accuracy: 0.97 }
    }
}

/// The outcome of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss of the final epoch.
    pub final_loss: f32,
    /// Mean training accuracy of the final epoch.
    pub final_accuracy: f32,
    /// Number of epochs actually run (early stop may cut it short).
    pub epochs_run: usize,
    /// Per-epoch mean accuracy trace.
    pub accuracy_trace: Vec<f32>,
}

/// Trains `model` on `clouds` with Adam + softmax cross-entropy,
/// shuffling cloud order every epoch.
///
/// # Panics
///
/// Panics when `clouds` is empty.
pub fn train_model<M: SegmentationModel + ?Sized>(
    model: &mut M,
    clouds: &[CloudTensors],
    config: &TrainConfig,
    rng: &mut StdRng,
) -> TrainReport {
    assert!(!clouds.is_empty(), "train_model: no training clouds");
    let mut adam = Adam::with_lr(config.lr);
    // Geometry depends only on coordinates, which never change across
    // epochs — plan each cloud once instead of once per epoch, spreading
    // the independent clouds across the ambient runtime. The epoch loop
    // below stays sequential: SGD steps are order-dependent.
    let plans: Vec<GeometryPlan> = {
        let model: &M = model;
        colper_runtime::current().par_map(clouds.len(), |i| model.plan(&clouds[i].coords))
    };
    let mut order: Vec<usize> = (0..clouds.len()).collect();
    let mut trace = Vec::with_capacity(config.epochs);
    let mut final_loss = f32::INFINITY;
    let mut epochs_run = 0;

    for _ in 0..config.epochs {
        order.shuffle(rng);
        let mut epoch_loss = 0.0;
        let mut epoch_acc = 0.0;
        for &ci in &order {
            let t = &clouds[ci];
            let (grads, bn_updates, loss, acc) = {
                let mut session = Forward::new(model.params(), true);
                let input =
                    bind_input_planned(&mut session.tape, t, ColorBinding::Constant, &plans[ci]);
                let logits = model.forward(&mut session, &input, rng);
                let loss_var = session.tape.softmax_cross_entropy(logits, &t.labels);
                session.tape.backward(loss_var);
                let loss = session.tape.value(loss_var)[(0, 0)];
                let preds = session.tape.value(logits).argmax_rows();
                let correct = preds.iter().zip(&t.labels).filter(|(p, l)| p == l).count();
                let acc = correct as f32 / preds.len().max(1) as f32;
                (session.collect_grads(), session.into_bn_updates(), loss, acc)
            };
            model.params_mut().apply_bn_updates(&bn_updates);
            adam.step(model.params_mut(), &grads);
            epoch_loss += loss;
            epoch_acc += acc;
        }
        epoch_loss /= clouds.len() as f32;
        epoch_acc /= clouds.len() as f32;
        trace.push(epoch_acc);
        final_loss = epoch_loss;
        epochs_run += 1;
        if epoch_acc >= config.target_accuracy {
            break;
        }
    }

    TrainReport {
        final_loss,
        final_accuracy: *trace.last().expect("at least one epoch"),
        epochs_run,
        accuracy_trace: trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{evaluate_on, PointNet2, PointNet2Config, ResGcn, ResGcnConfig};
    use colper_scene::{normalize, IndoorSceneConfig, RoomKind, SceneGenerator};
    use rand::SeedableRng;

    fn training_set(
        n_clouds: usize,
        points: usize,
        norm: fn(&colper_scene::PointCloud) -> colper_scene::PointCloud,
    ) -> Vec<CloudTensors> {
        (0..n_clouds)
            .map(|i| {
                let cfg = IndoorSceneConfig {
                    room_kind: Some(RoomKind::Office),
                    ..IndoorSceneConfig::with_points(points)
                };
                let cloud = SceneGenerator::indoor(cfg).generate(100 + i as u64);
                CloudTensors::from_cloud(&norm(&cloud))
            })
            .collect()
    }

    #[test]
    fn pointnet_learns_synthetic_rooms() {
        let mut rng = StdRng::seed_from_u64(0);
        let clouds = training_set(6, 256, normalize::pointnet_view);
        let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let before: f32 = clouds.iter().map(|t| evaluate_on(&model, t, &mut rng)).sum::<f32>()
            / clouds.len() as f32;
        let cfg = TrainConfig { epochs: 10, lr: 0.01, target_accuracy: 0.9 };
        let report = train_model(&mut model, &clouds, &cfg, &mut rng);
        let after: f32 = clouds.iter().map(|t| evaluate_on(&model, t, &mut rng)).sum::<f32>()
            / clouds.len() as f32;
        assert!(
            after > before + 0.2 && after > 0.5,
            "training should lift accuracy: {before} -> {after} ({report:?})"
        );
    }

    #[test]
    fn resgcn_learns_synthetic_rooms() {
        let mut rng = StdRng::seed_from_u64(1);
        let clouds = training_set(6, 256, normalize::resgcn_view);
        let mut model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
        let cfg = TrainConfig { epochs: 10, lr: 0.01, target_accuracy: 0.9 };
        let report = train_model(&mut model, &clouds, &cfg, &mut rng);
        assert!(report.final_accuracy > 0.5, "{report:?}");
        assert!(report.accuracy_trace[report.epochs_run - 1] >= report.accuracy_trace[0] - 0.05);
    }

    #[test]
    fn early_stop_respects_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let clouds = training_set(2, 128, normalize::pointnet_view);
        let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        // Absurdly low target: should stop after one epoch.
        let cfg = TrainConfig { epochs: 50, lr: 0.01, target_accuracy: 0.0 };
        let report = train_model(&mut model, &clouds, &cfg, &mut rng);
        assert_eq!(report.epochs_run, 1);
    }

    #[test]
    #[should_panic(expected = "no training clouds")]
    fn empty_training_set_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let _ = train_model(&mut model, &[], &TrainConfig::default(), &mut rng);
    }
}
