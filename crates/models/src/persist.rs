//! Self-describing model checkpoints: architecture configuration and
//! weights in one stream, so a saved model can be reloaded without the
//! loading code knowing which architecture (or which widths) produced
//! it.
//!
//! Layout: magic `CLPM`, format version, a kind byte, the kind-specific
//! configuration (little-endian integers/floats, `u32`-prefixed lists),
//! then the [`colper_nn`] parameter checkpoint.
//!
//! # Example
//!
//! ```
//! use colper_models::{load_model, save_pointnet2, LoadedModel, PointNet2, PointNet2Config};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), colper_nn::SerializeError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
//! let mut buf = Vec::new();
//! save_pointnet2(&model, &mut buf)?;
//! let loaded = load_model(buf.as_slice())?;
//! assert!(matches!(loaded, LoadedModel::PointNet2(_)));
//! # Ok(())
//! # }
//! ```

use crate::{
    PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn, ResGcnConfig, SegmentationModel,
};
use colper_nn::{load_params, save_params, SerializeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"CLPM";
const VERSION: u32 = 1;

const KIND_POINTNET2: u8 = 1;
const KIND_RESGCN: u8 = 2;
const KIND_RANDLANET: u8 = 3;

/// A model restored by [`load_model`].
#[derive(Debug)]
pub enum LoadedModel {
    /// A PointNet++ checkpoint.
    PointNet2(PointNet2),
    /// A ResGCN checkpoint.
    ResGcn(ResGcn),
    /// A RandLA-Net checkpoint.
    RandLaNet(RandLaNet),
}

impl LoadedModel {
    /// Borrows the model through the trait.
    pub fn as_dyn(&self) -> &dyn SegmentationModel {
        match self {
            LoadedModel::PointNet2(m) => m,
            LoadedModel::ResGcn(m) => m,
            LoadedModel::RandLaNet(m) => m,
        }
    }

    /// Mutably borrows the model through the trait.
    pub fn as_dyn_mut(&mut self) -> &mut dyn SegmentationModel {
        match self {
            LoadedModel::PointNet2(m) => m,
            LoadedModel::ResGcn(m) => m,
            LoadedModel::RandLaNet(m) => m,
        }
    }
}

/// Saves a PointNet++ checkpoint.
///
/// # Errors
///
/// Returns [`SerializeError::Io`] on write failure.
pub fn save_pointnet2<W: Write>(model: &PointNet2, mut w: W) -> Result<(), SerializeError> {
    write_header(&mut w, KIND_POINTNET2)?;
    let c = model.config();
    write_usize(&mut w, c.num_classes)?;
    write_usize_list(&mut w, &c.sa_npoints)?;
    write_f32_list(&mut w, &c.sa_radii)?;
    write_usize_list(&mut w, &c.sa_k)?;
    write_nested_list(&mut w, &c.sa_widths)?;
    write_nested_list(&mut w, &c.fp_widths)?;
    write_usize(&mut w, c.head_width)?;
    w.write_all(&c.dropout.to_le_bytes())?;
    save_params(model.params(), w)
}

/// Saves a ResGCN checkpoint.
///
/// # Errors
///
/// Returns [`SerializeError::Io`] on write failure.
pub fn save_resgcn<W: Write>(model: &ResGcn, mut w: W) -> Result<(), SerializeError> {
    write_header(&mut w, KIND_RESGCN)?;
    let c = model.config();
    write_usize(&mut w, c.num_classes)?;
    write_usize(&mut w, c.blocks)?;
    write_usize(&mut w, c.channels)?;
    write_usize(&mut w, c.k)?;
    write_usize(&mut w, c.max_dilation)?;
    w.write_all(&c.dropout.to_le_bytes())?;
    save_params(model.params(), w)
}

/// Saves a RandLA-Net checkpoint.
///
/// # Errors
///
/// Returns [`SerializeError::Io`] on write failure.
pub fn save_randlanet<W: Write>(model: &RandLaNet, mut w: W) -> Result<(), SerializeError> {
    write_header(&mut w, KIND_RANDLANET)?;
    let c = model.config();
    write_usize(&mut w, c.num_classes)?;
    write_usize(&mut w, c.stages.len())?;
    for &(npoints, channels) in &c.stages {
        write_usize(&mut w, npoints)?;
        write_usize(&mut w, channels)?;
    }
    write_usize(&mut w, c.k)?;
    write_usize(&mut w, c.stem)?;
    w.write_all(&c.dropout.to_le_bytes())?;
    save_params(model.params(), w)
}

/// Loads any checkpoint written by the `save_*` functions above.
///
/// # Errors
///
/// Returns [`SerializeError`] on I/O failure, bad magic/version, an
/// unknown kind byte, or a checkpoint whose weight layout disagrees with
/// its own configuration.
pub fn load_model<R: Read>(mut r: R) -> Result<LoadedModel, SerializeError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SerializeError::BadMagic);
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(SerializeError::BadVersion(version));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    // The initialization RNG is irrelevant: weights are replaced below.
    let mut rng = StdRng::seed_from_u64(0);
    let mut loaded = match kind[0] {
        KIND_POINTNET2 => {
            let config = PointNet2Config {
                num_classes: read_usize(&mut r)?,
                sa_npoints: read_usize_list(&mut r)?,
                sa_radii: read_f32_list(&mut r)?,
                sa_k: read_usize_list(&mut r)?,
                sa_widths: read_nested_list(&mut r)?,
                fp_widths: read_nested_list(&mut r)?,
                head_width: read_usize(&mut r)?,
                dropout: read_f32(&mut r)?,
            };
            LoadedModel::PointNet2(PointNet2::new(config, &mut rng))
        }
        KIND_RESGCN => {
            let config = ResGcnConfig {
                num_classes: read_usize(&mut r)?,
                blocks: read_usize(&mut r)?,
                channels: read_usize(&mut r)?,
                k: read_usize(&mut r)?,
                max_dilation: read_usize(&mut r)?,
                dropout: read_f32(&mut r)?,
            };
            LoadedModel::ResGcn(ResGcn::new(config, &mut rng))
        }
        KIND_RANDLANET => {
            let num_classes = read_usize(&mut r)?;
            let n_stages = read_usize(&mut r)?;
            if n_stages > 64 {
                return Err(SerializeError::Corrupt("implausible stage count"));
            }
            let mut stages = Vec::with_capacity(n_stages);
            for _ in 0..n_stages {
                stages.push((read_usize(&mut r)?, read_usize(&mut r)?));
            }
            let config = RandLaNetConfig {
                num_classes,
                stages,
                k: read_usize(&mut r)?,
                stem: read_usize(&mut r)?,
                dropout: read_f32(&mut r)?,
            };
            LoadedModel::RandLaNet(RandLaNet::new(config, &mut rng))
        }
        _ => return Err(SerializeError::Corrupt("unknown model kind byte")),
    };
    let params = load_params(r)?;
    let model = loaded.as_dyn_mut();
    if params.param_count() != model.params().param_count()
        || params.buffer_count() != model.params().buffer_count()
    {
        return Err(SerializeError::Corrupt("weight layout disagrees with configuration"));
    }
    *model.params_mut() = params;
    Ok(loaded)
}

fn write_header<W: Write>(w: &mut W, kind: u8) -> Result<(), SerializeError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[kind])?;
    Ok(())
}

fn write_usize<W: Write>(w: &mut W, v: usize) -> Result<(), SerializeError> {
    w.write_all(&(v as u32).to_le_bytes())?;
    Ok(())
}

fn write_usize_list<W: Write>(w: &mut W, list: &[usize]) -> Result<(), SerializeError> {
    write_usize(w, list.len())?;
    for &v in list {
        write_usize(w, v)?;
    }
    Ok(())
}

fn write_f32_list<W: Write>(w: &mut W, list: &[f32]) -> Result<(), SerializeError> {
    write_usize(w, list.len())?;
    for &v in list {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn write_nested_list<W: Write>(w: &mut W, list: &[Vec<usize>]) -> Result<(), SerializeError> {
    write_usize(w, list.len())?;
    for inner in list {
        write_usize_list(w, inner)?;
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, SerializeError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_usize<R: Read>(r: &mut R) -> Result<usize, SerializeError> {
    Ok(read_u32(r)? as usize)
}

fn read_f32<R: Read>(r: &mut R) -> Result<f32, SerializeError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

fn read_usize_list<R: Read>(r: &mut R) -> Result<Vec<usize>, SerializeError> {
    let len = read_usize(r)?;
    if len > 4096 {
        return Err(SerializeError::Corrupt("implausible list length"));
    }
    (0..len).map(|_| read_usize(r)).collect()
}

fn read_f32_list<R: Read>(r: &mut R) -> Result<Vec<f32>, SerializeError> {
    let len = read_usize(r)?;
    if len > 4096 {
        return Err(SerializeError::Corrupt("implausible list length"));
    }
    (0..len).map(|_| read_f32(r)).collect()
}

fn read_nested_list<R: Read>(r: &mut R) -> Result<Vec<Vec<usize>>, SerializeError> {
    let len = read_usize(r)?;
    if len > 4096 {
        return Err(SerializeError::Corrupt("implausible list length"));
    }
    (0..len).map(|_| read_usize_list(r)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{predict, CloudTensors};
    use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};

    fn sample_tensors() -> CloudTensors {
        let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(3);
        CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
    }

    #[test]
    fn pointnet_round_trip_preserves_predictions() {
        let mut rng = StdRng::seed_from_u64(1);
        let model = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
        let t = sample_tensors();
        let before = predict(&model, &t, &mut StdRng::seed_from_u64(9));

        let mut buf = Vec::new();
        save_pointnet2(&model, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        let LoadedModel::PointNet2(restored) = loaded else {
            panic!("wrong kind");
        };
        assert_eq!(restored.config(), model.config());
        let after = predict(&restored, &t, &mut StdRng::seed_from_u64(9));
        assert_eq!(before, after);
    }

    #[test]
    fn resgcn_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let model = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
        let mut buf = Vec::new();
        save_resgcn(&model, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        let LoadedModel::ResGcn(restored) = loaded else { panic!("wrong kind") };
        assert_eq!(restored.config(), model.config());
        assert_eq!(restored.params().num_scalars(), model.params().num_scalars());
    }

    #[test]
    fn randlanet_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let model = RandLaNet::new(RandLaNetConfig::tiny(8), &mut rng);
        let mut buf = Vec::new();
        save_randlanet(&model, &mut buf).unwrap();
        let loaded = load_model(buf.as_slice()).unwrap();
        let LoadedModel::RandLaNet(restored) = loaded else { panic!("wrong kind") };
        assert_eq!(restored.config(), model.config());
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_model(&b"XXXX\x01\x00\x00\x00\x01"[..]).unwrap_err();
        assert!(matches!(err, SerializeError::BadMagic));
    }

    #[test]
    fn unknown_kind_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CLPM");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(99);
        let err = load_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerializeError::Corrupt(_)));
    }

    #[test]
    fn truncated_config_is_io_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"CLPM");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(KIND_RESGCN);
        buf.extend_from_slice(&13u32.to_le_bytes()); // then nothing
        let err = load_model(buf.as_slice()).unwrap_err();
        assert!(matches!(err, SerializeError::Io(_)));
    }
}
