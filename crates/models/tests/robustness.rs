//! Robustness of the three architectures on degenerate inputs: tiny
//! clouds, duplicate points, saturated colors — the edge cases real
//! preprocessing pipelines produce (the paper mentions "random
//! filtering, nodes copying, and point clouds separation").

use colper_geom::Point3;
use colper_models::{
    logits_of, CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn,
    ResGcnConfig, SegmentationModel,
};
use colper_scene::{normalize, IndoorSceneConfig, PointCloud, SceneGenerator};
use colper_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn models(classes: usize) -> Vec<Box<dyn SegmentationModel>> {
    let mut rng = StdRng::seed_from_u64(0);
    vec![
        Box::new(PointNet2::new(PointNet2Config::tiny(classes), &mut rng)),
        Box::new(ResGcn::new(ResGcnConfig::tiny(classes), &mut rng)),
        Box::new(RandLaNet::new(RandLaNetConfig::tiny(classes), &mut rng)),
    ]
}

fn assert_clean_logits(t: &CloudTensors, context: &str) {
    let mut rng = StdRng::seed_from_u64(1);
    for model in models(t.num_classes) {
        let logits = logits_of(model.as_ref(), t, &mut rng);
        assert_eq!(logits.shape(), (t.len(), t.num_classes), "{}: {context}", model.name());
        assert!(logits.all_finite(), "{}: non-finite logits on {context}", model.name());
    }
}

#[test]
fn single_point_cloud() {
    let cloud =
        PointCloud::new(vec![Point3::new(0.5, 0.5, 0.5)], vec![[0.3, 0.6, 0.9]], vec![2], 13);
    assert_clean_logits(&CloudTensors::from_cloud(&cloud), "single point");
}

#[test]
fn all_points_identical() {
    // Nodes-copying preprocessing can duplicate one point many times;
    // kd-trees, FPS and normalization must all survive zero extent.
    let n = 64;
    let cloud = PointCloud::new(
        vec![Point3::new(1.0, 2.0, 3.0); n],
        vec![[0.5, 0.5, 0.5]; n],
        vec![0; n],
        13,
    );
    let view = normalize::pointnet_view(&cloud);
    assert_clean_logits(&CloudTensors::from_cloud(&view), "identical points");
}

#[test]
fn collinear_points() {
    let n = 48;
    let cloud = PointCloud::new(
        (0..n).map(|i| Point3::new(i as f32 * 0.1, 0.0, 0.0)).collect(),
        vec![[0.2, 0.4, 0.6]; n],
        (0..n).map(|i| i % 13).collect(),
        13,
    );
    let view = normalize::resgcn_view(&cloud);
    assert_clean_logits(&CloudTensors::from_cloud(&view), "collinear points");
}

#[test]
fn saturated_colors() {
    let base = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(4);
    let mut cloud = normalize::pointnet_view(&base);
    for (i, c) in cloud.colors.iter_mut().enumerate() {
        *c = if i % 2 == 0 { [0.0; 3] } else { [1.0; 3] };
    }
    assert_clean_logits(&CloudTensors::from_cloud(&cloud), "saturated colors");
}

#[test]
fn two_point_cloud_each_model() {
    let cloud = PointCloud::new(
        vec![Point3::new(0.0, 0.0, 0.0), Point3::new(1.0, 1.0, 1.0)],
        vec![[0.1, 0.2, 0.3], [0.9, 0.8, 0.7]],
        vec![0, 1],
        13,
    );
    assert_clean_logits(&CloudTensors::from_cloud(&cloud), "two points");
}

#[test]
fn logits_respond_to_color_changes() {
    // Sanity for the whole premise: color must actually influence every
    // model's output.
    let base = SceneGenerator::indoor(IndoorSceneConfig::with_points(96)).generate(6);
    let view = normalize::pointnet_view(&base);
    let t1 = CloudTensors::from_cloud(&view);
    let mut t2 = t1.clone();
    t2.colors = Matrix::filled(96, 3, 0.5);
    for model in models(13) {
        let mut rng = StdRng::seed_from_u64(7);
        let l1 = logits_of(model.as_ref(), &t1, &mut rng);
        let mut rng = StdRng::seed_from_u64(7);
        let l2 = logits_of(model.as_ref(), &t2, &mut rng);
        assert!(l1.max_abs_diff(&l2) > 1e-4, "{}: logits ignore color entirely", model.name());
    }
}
