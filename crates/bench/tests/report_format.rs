//! Formatting tests for the experiment reports: the Display
//! implementations are what end up in `results/*.txt` and EXPERIMENTS.md,
//! so their layout is part of the deliverable.

use colper_bench::table1::{ModelRows, SampleOutcome, Table1Report};
use colper_bench::table2_6::{Table6Report, TargetedCell};
use colper_bench::table7::{Table7Report, Table7Row};
use colper_bench::table8::{Table8Report, TransferRow};
use colper_scene::IndoorClass;

fn outcome(l2: f32, adv_acc: f32) -> SampleOutcome {
    SampleOutcome {
        l2,
        clean_acc: 0.9,
        clean_miou: 0.7,
        adv_acc,
        adv_miou: adv_acc * 0.6,
        base_acc: 0.8,
        base_miou: 0.5,
    }
}

#[test]
fn table1_renders_best_average_worst_rows() {
    let report = Table1Report {
        rows: vec![ModelRows {
            model: "pointnet++".into(),
            clean_acc: 0.9,
            clean_miou: 0.7,
            samples: vec![outcome(3.0, 0.05), outcome(4.0, 0.25), outcome(5.0, 0.45)],
        }],
    };
    let text = report.to_string();
    assert!(text.contains("Table 1"));
    assert!(text.contains("pointnet++"));
    for case in ["clean", "best", "average", "worst"] {
        assert!(text.contains(case), "missing row {case}");
    }
    // Best row shows the lowest adversarial accuracy.
    assert!(text.contains("5.00%"), "{text}");
    // Average = 25%.
    assert!(text.contains("25.00%"), "{text}");
}

#[test]
fn table1_summaries_match_samples() {
    let rows = ModelRows {
        model: "m".into(),
        clean_acc: 0.9,
        clean_miou: 0.7,
        samples: vec![outcome(2.0, 0.1), outcome(6.0, 0.3)],
    };
    let l2 = rows.l2();
    assert_eq!(l2.min, 2.0);
    assert_eq!(l2.max, 6.0);
    assert!((l2.mean - 4.0).abs() < 1e-6);
    let acc = rows.adv_acc();
    assert!((acc.mean - 0.2).abs() < 1e-6);
}

#[test]
fn table6_renders_cells_with_sr_and_oob() {
    let report = Table6Report {
        cells: vec![TargetedCell {
            model: "resgcn-5".into(),
            source: IndoorClass::Board,
            l2: 1.25,
            points: 321,
            sr: 0.9608,
            oob_acc: 0.7837,
            acc: 0.8885,
            oob_miou: 0.5658,
            miou: 0.6643,
            samples_used: 4,
        }],
    };
    let text = report.to_string();
    assert!(text.contains("resgcn-5(board)"));
    assert!(text.contains("96.08%"));
    assert!(text.contains("78.37%"));
    assert!(text.contains("321"));
}

#[test]
fn table7_renders_na_for_failed_settings() {
    let report = Table7Report {
        rows: vec![
            Table7Row {
                model: "resgcn-5".into(),
                target: colper_attack::PerturbTarget::Color,
                accuracy: 0.0684,
                miou: 0.0355,
                ssr: 0.8117,
                samples: 6,
            },
            Table7Row {
                model: "resgcn-5".into(),
                target: colper_attack::PerturbTarget::Coordinate,
                accuracy: f32::NAN,
                miou: f32::NAN,
                ssr: 0.0,
                samples: 6,
            },
        ],
    };
    let text = report.to_string();
    assert!(text.contains("81.17%"));
    assert!(text.contains("N/A"), "failed settings must render N/A: {text}");
    assert!(text.contains("(color)"));
    assert!(text.contains("(coordinate)"));
}

#[test]
fn table8_renders_all_settings() {
    let report = Table8Report {
        rows: vec![
            TransferRow {
                setting: "pointnet++ (self-trained)".into(),
                accuracy: 0.3435,
                miou: 0.3139,
            },
            TransferRow {
                setting: "resgcn -> pointnet++ (eq. 10)".into(),
                accuracy: 0.3901,
                miou: 0.2530,
            },
        ],
        samples: 6,
    };
    let text = report.to_string();
    assert!(text.contains("6 samples"));
    assert!(text.contains("34.35%"));
    assert!(text.contains("eq. 10"));
}

#[test]
fn bench_config_scales_from_env_contract() {
    // from_env without variables returns the standard scale.
    std::env::remove_var("COLPER_FULL");
    std::env::remove_var("COLPER_QUICK");
    let cfg = colper_bench::BenchConfig::from_env();
    assert_eq!(cfg.points, colper_bench::BenchConfig::standard().points);
}
