//! Criterion benches for model forward passes and the attack-relevant
//! backward pass (gradient with respect to the input colors).

use colper_models::{
    bind_input, CloudTensors, ColorBinding, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig,
    ResGcn, ResGcnConfig, SegmentationModel,
};
use colper_nn::Forward;
use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POINTS: usize = 512;

fn tensors(view: fn(&colper_scene::PointCloud) -> colper_scene::PointCloud) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(POINTS)).generate(1);
    CloudTensors::from_cloud(&view(&cloud))
}

fn bench_model<M: SegmentationModel>(c: &mut Criterion, name: &str, model: &M, t: &CloudTensors) {
    let mut group = c.benchmark_group(name);
    group.sample_size(20);
    group.bench_function("forward_eval", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut session = Forward::new(model.params(), false);
            let input = bind_input(&mut session.tape, t, ColorBinding::Constant);
            let logits = model.forward(&mut session, &input, &mut rng);
            session.tape.value(logits).sum()
        });
    });
    group.bench_function("forward_backward_color_grad", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let mut session = Forward::new(model.params(), false);
            let input = bind_input(&mut session.tape, t, ColorBinding::Leaf);
            let logits = model.forward(&mut session, &input, &mut rng);
            let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
            session.tape.backward(loss);
            session.tape.grad(input.color).unwrap().sum()
        });
    });
    group.finish();
}

fn bench_all(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let pn = PointNet2::new(PointNet2Config::small(13), &mut rng);
    bench_model(c, "pointnet2_512", &pn, &tensors(normalize::pointnet_view));
    let rg = ResGcn::new(ResGcnConfig::small(13), &mut rng);
    bench_model(c, "resgcn_512", &rg, &tensors(normalize::resgcn_view));
    let rl = RandLaNet::new(RandLaNetConfig::small(13), &mut rng);
    bench_model(
        c,
        "randla_512",
        &rl,
        &tensors(|cl| {
            let mut rng = StdRng::seed_from_u64(9);
            normalize::randla_view(cl, cl.len(), &mut rng)
        }),
    );
}

criterion_group!(benches, bench_all);
criterion_main!(benches);
