//! Criterion benches for the geometry substrate hot paths: kd-tree
//! construction, k-NN queries, graph building, farthest point sampling
//! and ball queries.

use colper_geom::{ball_query, dilated_knn, farthest_point_sampling, knn_graph, KdTree, Point3};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_points(n: usize, seed: u64) -> Vec<Point3> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Point3::new(
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
                rng.gen_range(-3.0..3.0),
            )
        })
        .collect()
}

fn bench_kdtree(c: &mut Criterion) {
    let mut group = c.benchmark_group("kdtree");
    for n in [512usize, 2048] {
        let pts = random_points(n, 1);
        group.bench_with_input(BenchmarkId::new("build", n), &pts, |b, pts| {
            b.iter(|| KdTree::build(black_box(pts)));
        });
        let tree = KdTree::build(&pts);
        group.bench_with_input(BenchmarkId::new("knn16", n), &tree, |b, tree| {
            b.iter(|| tree.knn(black_box(Point3::new(0.1, 0.2, 0.3)), 16));
        });
    }
    group.finish();
}

fn bench_graphs(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphs");
    for n in [512usize, 2048] {
        let pts = random_points(n, 2);
        group.bench_with_input(BenchmarkId::new("knn_graph_k16", n), &pts, |b, pts| {
            b.iter(|| knn_graph(black_box(pts), 16));
        });
        group.bench_with_input(BenchmarkId::new("dilated_knn_k16_d4", n), &pts, |b, pts| {
            b.iter(|| dilated_knn(black_box(pts), 16, 4));
        });
    }
    group.finish();
}

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    for n in [512usize, 2048] {
        let pts = random_points(n, 3);
        group.bench_with_input(BenchmarkId::new("fps_quarter", n), &pts, |b, pts| {
            b.iter(|| farthest_point_sampling(black_box(pts), pts.len() / 4, 0));
        });
        let centroids: Vec<Point3> = pts.iter().step_by(4).copied().collect();
        group.bench_with_input(BenchmarkId::new("ball_query_r0.5_k16", n), &pts, |b, pts| {
            b.iter(|| ball_query(black_box(pts), &centroids, 0.5, 16));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_kdtree, bench_graphs, bench_sampling);
criterion_main!(benches);
