//! Benches for the attack's building blocks (tanh reparameterization,
//! smoothness penalty, CW hinges) plus the headline comparison this
//! target exists for: one COLPER step with a cached [`AttackPlan`]
//! versus one step that rebuilds all static geometry from scratch.
//!
//! The comparison is emitted machine-readably to
//! `results/BENCH_attack_step.json`. An allocation-counting mode
//! (thread-local gauge around the system allocator) measures heap
//! allocations per steady-state attack step and emits
//! `results/BENCH_alloc.json`; it asserts the committed zero-allocation
//! budget, so running the bench doubles as the CI gate. A kernel-dispatch
//! comparison times the scalar reference against the runtime-dispatched
//! AVX2+FMA path and emits `results/BENCH_simd.json`, asserting the
//! committed >= 2x matmul speedup on hosts that support it. Pass
//! `--quick` (CI does) to skip the component benches and run every
//! comparison at smoke-test scale — one quick invocation refreshes all
//! four BENCH files; `--alloc-only` runs just the allocation gauge and
//! `--simd-only` just the kernel-dispatch/tiled-GEMM comparison.

use colper_attack::{AttackConfig, AttackPlan, AttackSession, TanhReparam};
use colper_autodiff::{set_schedule_enabled, Tape};
use colper_bench::write_json;
use colper_geom::knn_graph;
use colper_models::{CloudTensors, ModelInput, PointNet2, PointNet2Config, SegmentationModel};
use colper_nn::Forward;
use colper_runtime::Runtime;
use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_tensor::Matrix;
use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Heap allocations a steady-state attack step (step >= 2 on a planned
/// cloud, single gradient sample) is allowed to make. The tape arenas,
/// interned constants, and preallocated scratch make this exactly zero;
/// raising it requires a deliberate decision, not a silent regression.
const STEADY_STATE_ALLOC_BUDGET: u64 = 0;

/// Thread-local gauge around the system allocator. Counting is scoped to
/// the bench thread and toggled around measured regions only, so worker
/// threads and harness bookkeeping never pollute a measurement; measured
/// regions therefore run on the sequential runtime.
mod alloc_gauge {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::cell::Cell;

    /// System-allocator wrapper feeding the thread-local counters.
    pub struct CountingAllocator;

    thread_local! {
        static ENABLED: Cell<bool> = const { Cell::new(false) };
        static ALLOCS: Cell<u64> = const { Cell::new(0) };
        static BYTES: Cell<u64> = const { Cell::new(0) };
    }

    fn record(size: usize) {
        ENABLED.with(|e| {
            if e.get() {
                ALLOCS.with(|a| a.set(a.get() + 1));
                BYTES.with(|b| b.set(b.get() + size as u64));
            }
        });
    }

    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
    }

    /// Runs `f` with the gauge on; returns `(result, allocations,
    /// bytes requested)` for the current thread during the call.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, u64, u64) {
        ALLOCS.with(|a| a.set(0));
        BYTES.with(|b| b.set(0));
        ENABLED.with(|e| e.set(true));
        let out = f();
        ENABLED.with(|e| e.set(false));
        (out, ALLOCS.with(Cell::get), BYTES.with(Cell::get))
    }
}

#[global_allocator]
static GLOBAL: alloc_gauge::CountingAllocator = alloc_gauge::CountingAllocator;

const POINTS: usize = 512;

fn tensors(points: usize) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(2);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

fn bench_components(c: &mut Criterion) {
    let t = tensors(POINTS);
    let mut group = c.benchmark_group("attack_components");

    let reparam = TanhReparam::color();
    group.bench_function("tanh_to_w_512", |b| {
        b.iter(|| reparam.to_w(black_box(&t.colors)));
    });

    let nbrs = knn_graph(&t.coords, 10);
    group.bench_function("smoothness_alpha10_512", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let colors = tape.leaf(t.colors.clone());
            let s = tape.smoothness(colors, &t.xyz, &nbrs, 10);
            tape.backward(s);
            tape.grad(colors).unwrap().sum()
        });
    });

    let labels = t.labels.clone();
    let mask = vec![true; POINTS];
    group.bench_function("cw_hinge_512x13", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = tape.leaf(Matrix::from_fn(POINTS, 13, |r, c| ((r * 13 + c) % 7) as f32));
            let l = tape.cw_nontargeted(logits, &labels, &mask);
            tape.backward(l);
            tape.grad(logits).unwrap().sum()
        });
    });
    group.finish();
}

criterion_group!(component_benches, bench_components);

/// Hardware threads on this host. Recorded alongside every speedup
/// block so a reader can tell an algorithmic regression from a run on
/// a core-starved container (a 1-core host cannot show pool speedups).
fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn median(samples: &mut [u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `routine` `samples` times (after one untimed warm-up) and
/// returns the median nanoseconds per call.
fn time_median_ns(samples: usize, mut routine: impl FnMut()) -> u128 {
    routine();
    let mut ns: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            routine();
            t0.elapsed().as_nanos()
        })
        .collect();
    median(&mut ns)
}

/// One attack step with the plan rebuilt from scratch vs. reused from a
/// cache — the amortization the GeometryPlan layer buys per iteration.
fn bench_planned_vs_unplanned(points: usize, samples: usize, model_scale: &str) {
    let t = tensors(points);
    let mut rng = StdRng::seed_from_u64(0);
    let model = match model_scale {
        "tiny" => PointNet2::new(PointNet2Config::tiny(13), &mut rng),
        _ => PointNet2::new(PointNet2Config::small(13), &mut rng),
    };
    let config = AttackConfig::non_targeted(1);

    // Warm up everything the two timed closures share — the runtime's
    // thread pool, lazy statics, allocator arenas, page cache — before
    // either routine is timed, so neither side pays first-use costs
    // inside its measured region. The plan is built here too; both
    // warm-up runs double as a bit-identity check between the paths.
    let plan = AttackPlan::build(&model, &t, &config);
    let warm_unplanned = {
        let mut rng = StdRng::seed_from_u64(3);
        AttackSession::new(config.clone()).run_with_rng(&model, &t, &mut rng)
    };
    let warm_planned = {
        let mut rng = StdRng::seed_from_u64(3);
        AttackSession::new(config.clone()).plan(&plan).run_with_rng(&model, &t, &mut rng)
    };
    assert_eq!(
        warm_unplanned.adversarial_colors, warm_planned.adversarial_colors,
        "planned attack must be bit-identical to the plan-free attack"
    );

    let unplanned_ns = time_median_ns(samples, || {
        let mut rng = StdRng::seed_from_u64(3);
        // The plan-free path builds a fresh AttackPlan internally every
        // call — this is what every attack step paid before the cache
        // existed.
        black_box(AttackSession::new(config.clone()).run_with_rng(&model, &t, &mut rng).l2_sq);
    });

    let planned_ns = time_median_ns(samples, || {
        let mut rng = StdRng::seed_from_u64(3);
        black_box(
            AttackSession::new(config.clone()).plan(&plan).run_with_rng(&model, &t, &mut rng).l2_sq,
        );
    });

    // Trace overhead: the same planned attack through the session API,
    // tracing off vs on (the enabled path records one StepRecord per
    // step and keeps every span/counter live). A longer attack than the
    // 1-step headline comparison, so the per-step hooks — not setup —
    // dominate what the ratio measures. Committed ceiling: 5%.
    const TRACE_STEPS: usize = 6;
    let mut trace_cfg = AttackConfig::non_targeted(TRACE_STEPS);
    trace_cfg.convergence_threshold = Some(0.0); // never stop early
    let trace_plan = AttackPlan::build(&model, &t, &trace_cfg);
    let session_run = |observer: &colper_obs::Observer| {
        AttackSession::new(trace_cfg.clone())
            .plan(&trace_plan)
            .observer(observer)
            .seed(3)
            .run(&model, std::slice::from_ref(&t))
    };
    colper_obs::set_enabled(false);
    let trace_off_ns = time_median_ns(samples, || {
        black_box(session_run(&colper_obs::Observer::disabled()).items[0].result.l2_sq);
    });
    colper_obs::set_enabled(true);
    let trace_on_ns = time_median_ns(samples, || {
        black_box(session_run(&colper_obs::Observer::enabled()).items[0].result.l2_sq);
    });
    colper_obs::set_enabled(false);
    colper_obs::reset();
    let trace_overhead = trace_on_ns as f64 / trace_off_ns.max(1) as f64 - 1.0;

    // Scheduled replay vs dynamic rebuild, as marginal per-step cost:
    // the same planned attack at two lengths, divided by the step-count
    // difference, so run-constant work (plan lookup, the step-0 build,
    // the one-shot schedule compile) cancels and only the steady-state
    // step remains — replayed on one side, rebuilt on the other.
    const SCHED_SHORT: usize = 2;
    const SCHED_LONG: usize = 12;
    let attack_total_ns = |scheduled: bool, steps: usize| -> u128 {
        set_schedule_enabled(scheduled);
        let mut cfg = AttackConfig::non_targeted(steps);
        cfg.convergence_threshold = Some(0.0); // never stop early
        let sched_plan = AttackPlan::build(&model, &t, &cfg);
        let session = AttackSession::new(cfg).plan(&sched_plan);
        let ns = time_median_ns(samples, || {
            let mut rng = StdRng::seed_from_u64(3);
            black_box(session.run_with_rng(&model, &t, &mut rng).l2_sq);
        });
        set_schedule_enabled(true);
        ns
    };
    let steps_diff = (SCHED_LONG - SCHED_SHORT) as u128;
    let dynamic_step_ns = attack_total_ns(false, SCHED_LONG)
        .saturating_sub(attack_total_ns(false, SCHED_SHORT))
        / steps_diff;
    let scheduled_step_ns = attack_total_ns(true, SCHED_LONG)
        .saturating_sub(attack_total_ns(true, SCHED_SHORT))
        / steps_diff;
    let sched_speedup = dynamic_step_ns as f64 / scheduled_step_ns.max(1) as f64;
    let dynamic_steps_per_sec = 1e9 / dynamic_step_ns.max(1) as f64;
    let scheduled_steps_per_sec = 1e9 / scheduled_step_ns.max(1) as f64;
    assert!(
        sched_speedup >= 1.2,
        "scheduled replay is only {sched_speedup:.2}x over the dynamic rebuild \
         ({scheduled_step_ns} ns vs {dynamic_step_ns} ns per step; committed floor: 1.2x)"
    );

    let speedup = unplanned_ns as f64 / planned_ns.max(1) as f64;
    println!(
        "bench attack_step/planned_vs_unplanned: unplanned {unplanned_ns} ns, \
         planned {planned_ns} ns ({speedup:.2}x), {points} points, {samples} samples"
    );
    println!(
        "bench attack_step/scheduled: dynamic {dynamic_step_ns} ns/step \
         ({dynamic_steps_per_sec:.1} steps/s), scheduled {scheduled_step_ns} ns/step \
         ({scheduled_steps_per_sec:.1} steps/s), {sched_speedup:.2}x"
    );
    println!(
        "bench attack_step/trace_overhead: off {trace_off_ns} ns, on {trace_on_ns} ns \
         ({:+.2}%, {TRACE_STEPS} steps)",
        trace_overhead * 100.0
    );
    let json = format!(
        "{{\n  \"benchmark\": \"attack_step\",\n  \"model\": \"pointnet2_{model_scale}\",\n  \
         \"points\": {points},\n  \"samples\": {samples},\n  \
         \"host_parallelism\": {host},\n  \
         \"unplanned_median_ns\": {unplanned_ns},\n  \"planned_median_ns\": {planned_ns},\n  \
         \"speedup\": {speedup:.4},\n  \
         \"scheduled\": {{\n    \"steps_measured\": {steps_diff},\n    \
         \"dynamic_step_ns\": {dynamic_step_ns},\n    \
         \"scheduled_step_ns\": {scheduled_step_ns},\n    \
         \"dynamic_steps_per_sec\": {dynamic_steps_per_sec:.1},\n    \
         \"scheduled_steps_per_sec\": {scheduled_steps_per_sec:.1},\n    \
         \"speedup\": {sched_speedup:.4}\n  }},\n  \
         \"trace\": {{\n    \"steps\": {TRACE_STEPS},\n    \
         \"off_median_ns\": {trace_off_ns},\n    \"on_median_ns\": {trace_on_ns},\n    \
         \"overhead_fraction\": {trace_overhead:.4}\n  }}\n}}\n",
        host = host_parallelism(),
    );
    write_json("BENCH_attack_step", &json);
}

/// A COLPER attack on the work-stealing pool vs. the sequential runtime.
///
/// Beyond timing, this is the bit-identity gate for the runtime: the two
/// executions must produce the same adversarial sample down to the last
/// bit, and the emitted `results/BENCH_parallel.json` keeps the metric
/// block separate from the timing block so CI can diff metric blocks
/// across `--threads` values (timings legitimately differ; results may
/// not).
fn bench_parallel(points: usize, steps: usize, samples: usize, threads: usize, model_scale: &str) {
    let t = tensors(points);
    let mut rng = StdRng::seed_from_u64(0);
    let model = match model_scale {
        "tiny" => PointNet2::new(PointNet2Config::tiny(13), &mut rng),
        _ => PointNet2::new(PointNet2Config::small(13), &mut rng),
    };
    let mut config = AttackConfig::non_targeted(steps);
    // Two EoT samples per step so the sample-level fan-out is exercised
    // on top of the tensor/geometry kernels.
    config.gradient_samples = 2;
    config.convergence_threshold = Some(0.0); // never stop early
    let plan = AttackPlan::build(&model, &t, &config);

    let run_with = |rt: &Runtime| {
        let mut rng = StdRng::seed_from_u64(3);
        AttackSession::new(config.clone())
            .runtime(rt)
            .plan(&plan)
            .run_with_rng(&model, &t, &mut rng)
    };

    let sequential = Runtime::sequential();
    let pool = Runtime::new(threads);
    let sequential_ns = time_median_ns(samples, || {
        black_box(run_with(&sequential).l2_sq);
    });
    let pool_ns = time_median_ns(samples, || {
        black_box(run_with(&pool).l2_sq);
    });

    let seq_result = run_with(&sequential);
    let pool_result = run_with(&pool);
    assert_eq!(
        seq_result.adversarial_colors, pool_result.adversarial_colors,
        "pool attack must be bit-identical to sequential"
    );
    assert_eq!(seq_result.predictions, pool_result.predictions);
    assert_eq!(seq_result.gain_history, pool_result.gain_history);

    // Order-sensitive digest of the whole gain trajectory, in raw bits.
    let gain_digest =
        seq_result.gain_history.iter().fold(0u64, |h, g| h.rotate_left(7) ^ u64::from(g.to_bits()));
    let host = host_parallelism();

    let speedup = sequential_ns as f64 / pool_ns.max(1) as f64;
    println!(
        "bench attack_step/parallel: sequential {sequential_ns} ns, \
         pool({threads}) {pool_ns} ns ({speedup:.2}x), {points} points, host parallelism {host}"
    );
    let json = format!(
        "{{\n  \"benchmark\": \"attack_parallel\",\n  \"model\": \"pointnet2_{model_scale}\",\n  \
         \"points\": {points},\n  \"steps\": {steps},\n  \"samples\": {samples},\n  \
         \"threads\": {threads},\n  \"host_parallelism\": {host},\n  \
         \"timing\": {{\n    \"sequential_median_ns\": {sequential_ns},\n    \
         \"pool_median_ns\": {pool_ns},\n    \"speedup\": {speedup:.4}\n  }},\n  \
         \"metrics\": {{\n    \"l2_sq_bits\": {l2_bits},\n    \
         \"success_metric_bits\": {sm_bits},\n    \"steps_run\": {steps_run},\n    \
         \"gain_digest\": {gain_digest}\n  }}\n}}\n",
        l2_bits = seq_result.l2_sq.to_bits(),
        sm_bits = seq_result.success_metric.to_bits(),
        steps_run = seq_result.steps_run,
    );
    write_json("BENCH_parallel", &json);
}

/// Counts heap allocations per steady-state attack step, plus a
/// fresh-vs-reused session replica showing where the savings come from.
///
/// Both measurements run on the sequential runtime so the thread-local
/// gauge sees every allocation the step makes:
///
/// 1. **Attack marginal** — the production path. Runs the planned
///    single-sample attack for `LONG` and `SHORT` steps and divides the
///    difference by `LONG - SHORT`: startup and teardown allocations
///    cancel, leaving exactly the per-step cost of steps
///    `SHORT..LONG` — all of them steady-state (step >= 2).
/// 2. **Session replica** — one forward+backward pass per step through
///    the public tape API, once with a fresh session per step (the old
///    regime) and once with a single session recycled via `reset` (the
///    new regime).
///
/// Asserts [`STEADY_STATE_ALLOC_BUDGET`] on both the attack marginal and
/// the reused-session steady state, so `cargo bench` is the CI gate.
// The budget is a tunable constant that happens to be 0 today; the `<=`
// comparisons are kept so raising it never silently inverts the gate.
#[allow(clippy::absurd_extreme_comparisons)]
fn bench_alloc(points: usize, model_scale: &str) {
    const SHORT: usize = 3;
    const LONG: usize = 8;
    const REPLICA_STEPS: usize = 6;
    let t = tensors(points);
    let mut rng = StdRng::seed_from_u64(0);
    let model = match model_scale {
        "tiny" => PointNet2::new(PointNet2Config::tiny(13), &mut rng),
        _ => PointNet2::new(PointNet2Config::small(13), &mut rng),
    };
    let seq = Runtime::sequential();

    let attack_allocs = |steps: usize, scheduled: bool| -> (u64, u64) {
        set_schedule_enabled(scheduled);
        let mut config = AttackConfig::non_targeted(steps);
        config.convergence_threshold = Some(0.0); // never stop early
        let plan = AttackPlan::build(&model, &t, &config);
        let session = AttackSession::new(config).runtime(&seq).plan(&plan);
        let mut rng = StdRng::seed_from_u64(3);
        let ((), allocs, bytes) = alloc_gauge::measure(|| {
            black_box(session.run_with_rng(&model, &t, &mut rng).l2_sq);
        });
        set_schedule_enabled(true);
        (allocs, bytes)
    };
    // Warm up before measuring: the first attack in a process pays a
    // one-time burst of lazy initialization (counter registry, SIMD
    // dispatch, thread-local pools). Measuring LONG first would book
    // that burst against the extra steps and report phantom per-step
    // allocations.
    let _ = attack_allocs(SHORT, true);
    // Both steady-state regimes are gated: the scheduled replay (the
    // default production path — steps >= 1 replay the compiled
    // schedule) and the dynamic rebuild (`COLPER_SCHEDULE=off`).
    let marginal = |scheduled: bool| -> (u64, f64) {
        let (long_allocs, long_bytes) = attack_allocs(LONG, scheduled);
        let (short_allocs, short_bytes) = attack_allocs(SHORT, scheduled);
        let steps_diff = (LONG - SHORT) as u64;
        (
            long_allocs.saturating_sub(short_allocs) / steps_diff,
            long_bytes.saturating_sub(short_bytes) as f64 / steps_diff as f64,
        )
    };
    let (allocs_per_step, bytes_per_step) = marginal(true);
    let (dynamic_allocs_per_step, dynamic_bytes_per_step) = marginal(false);
    let steps_diff = (LONG - SHORT) as u64;

    // Replica: the same planned forward+backward each step, comparing a
    // fresh session per step against one session recycled with `reset`.
    let geometry = model.plan(&t.coords);
    let step_pass = |session: &mut Forward<'_>, step: usize| {
        let xyz = session.tape.constant_from(&t.xyz);
        let color = session.tape.leaf_from(&t.colors);
        let loc = session.tape.constant_from(&t.loc01);
        let input = ModelInput { coords: &t.coords, xyz, color, loc, plan: Some(&geometry) };
        let mut rng = StdRng::seed_from_u64(700 + step as u64);
        let logits = model.forward(session, &input, &mut rng);
        let loss = session.tape.softmax_cross_entropy(logits, &t.labels);
        session.tape.backward(loss);
        black_box(session.tape.value(loss)[(0, 0)]);
    };
    let fresh: Vec<(u64, u64)> = seq.install(|| {
        (0..REPLICA_STEPS)
            .map(|step| {
                let ((), a, b) = alloc_gauge::measure(|| {
                    let mut session = Forward::new(model.params(), false);
                    step_pass(&mut session, step);
                });
                (a, b)
            })
            .collect()
    });
    let reused: Vec<(u64, u64)> = seq.install(|| {
        let mut session = Forward::new(model.params(), false);
        (0..REPLICA_STEPS)
            .map(|step| {
                let ((), a, b) = alloc_gauge::measure(|| {
                    session.reset();
                    step_pass(&mut session, step);
                });
                (a, b)
            })
            .collect()
    });
    let (fresh_steady_allocs, fresh_steady_bytes) = fresh[REPLICA_STEPS - 1];
    let (reused_steady_allocs, reused_steady_bytes) = reused[REPLICA_STEPS - 1];

    println!(
        "bench attack_step/alloc: attack steady state {allocs_per_step} allocs/step scheduled, \
         {dynamic_allocs_per_step} allocs/step dynamic ({bytes_per_step:.1} bytes/step); \
         replica fresh {fresh_steady_allocs} allocs/pass \
         vs reused {reused_steady_allocs} allocs/pass, {points} points"
    );
    assert!(
        allocs_per_step <= STEADY_STATE_ALLOC_BUDGET,
        "steady-state scheduled replay allocates ({allocs_per_step} allocs/step > budget \
         {STEADY_STATE_ALLOC_BUDGET}); the schedule arena or scratch reuse regressed"
    );
    assert!(
        dynamic_allocs_per_step <= STEADY_STATE_ALLOC_BUDGET,
        "steady-state dynamic attack step allocates ({dynamic_allocs_per_step} allocs/step > \
         budget {STEADY_STATE_ALLOC_BUDGET}); the tape arena or scratch reuse regressed"
    );
    assert!(
        reused_steady_allocs <= STEADY_STATE_ALLOC_BUDGET,
        "reused session still allocates ({reused_steady_allocs} allocs/pass > budget \
         {STEADY_STATE_ALLOC_BUDGET}); the tape arena or scratch reuse regressed"
    );

    let json = format!(
        "{{\n  \"benchmark\": \"attack_alloc\",\n  \"model\": \"pointnet2_{model_scale}\",\n  \
         \"points\": {points},\n  \"budget_allocs_per_step\": {STEADY_STATE_ALLOC_BUDGET},\n  \
         \"attack_steady_state\": {{\n    \"steps_measured\": {steps_diff},\n    \
         \"allocs_per_step\": {allocs_per_step},\n    \
         \"bytes_per_step\": {bytes_per_step:.1}\n  }},\n  \
         \"attack_steady_state_dynamic\": {{\n    \"steps_measured\": {steps_diff},\n    \
         \"allocs_per_step\": {dynamic_allocs_per_step},\n    \
         \"bytes_per_step\": {dynamic_bytes_per_step:.1}\n  }},\n  \
         \"session_replica\": {{\n    \"fresh_first_allocs\": {},\n    \
         \"fresh_steady_allocs\": {fresh_steady_allocs},\n    \
         \"fresh_steady_bytes\": {fresh_steady_bytes},\n    \
         \"reused_first_allocs\": {},\n    \
         \"reused_steady_allocs\": {reused_steady_allocs},\n    \
         \"reused_steady_bytes\": {reused_steady_bytes}\n  }}\n}}\n",
        fresh[0].0, reused[0].0,
    );
    write_json("BENCH_alloc", &json);
}

/// Scalar-reference vs dispatched-SIMD throughput on the hot kernels, at
/// the matrix shapes the network layers actually run (N points x 64-wide
/// feature blocks). Emits `results/BENCH_simd.json` with the detected
/// feature set, per-shape medians and GFLOP/s; asserts the committed 2x
/// matmul speedup floor on hosts where the AVX2+FMA path is active, and
/// verifies outputs are bit-identical across paths while it is at it.
///
/// Two further blocks cover the GEMM rework: `tiled` times the packed
/// register-blocked kernel against the row kernel at large shapes
/// (single-threaded and on a `--threads`-sized pool) and asserts the
/// committed 2x single-threaded floor; `batched` times the strided
/// batch-of-clouds GEMM against the per-cloud loop. Every timed variant
/// is bit-checked against the pinned scalar reference.
fn bench_simd(samples: usize, threads: usize) {
    use colper_tensor::{gemm_mode, kernels, set_gemm_mode, GemmMode};

    let shapes: [(usize, usize, usize); 3] = [(64, 64, 64), (256, 64, 64), (512, 128, 64)];
    let seq = Runtime::sequential();
    let was = kernels::simd_active();
    let was_mode = gemm_mode();
    // The row block times the row kernel regardless of routing, so its
    // numbers stay comparable with the committed history.
    set_gemm_mode(GemmMode::Row);
    let mut rows = Vec::new();
    let mut headline_speedup = 0.0f64;

    for &(m, k, n) in &shapes {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c) as f32 * 0.17).sin());
        let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c) as f32 * 0.23).cos());
        let mut out = Matrix::zeros(m, n);

        let mut run_path = |simd: bool| -> (u128, Vec<u32>) {
            kernels::set_simd_enabled(simd);
            let ns = seq.install(|| {
                time_median_ns(samples, || {
                    a.matmul_into(&b, &mut out).expect("shape");
                    black_box(out.as_slice().first().copied());
                })
            });
            (ns, out.as_slice().iter().map(|v| v.to_bits()).collect())
        };
        let (scalar_ns, scalar_bits) = run_path(false);
        let (simd_ns, simd_bits) = if kernels::simd_supported() {
            run_path(true)
        } else {
            (scalar_ns, scalar_bits.clone())
        };
        assert_eq!(scalar_bits, simd_bits, "matmul paths diverge at {m}x{k}x{n}");

        let flops = 2.0 * (m * k * n) as f64;
        let speedup = scalar_ns as f64 / simd_ns.max(1) as f64;
        headline_speedup = headline_speedup.max(speedup);
        let gflops = flops / simd_ns.max(1) as f64;
        println!(
            "bench attack_step/simd: matmul {m}x{k}x{n} scalar {scalar_ns} ns, \
             dispatched {simd_ns} ns ({speedup:.2}x, {gflops:.2} GFLOP/s)"
        );
        rows.push(format!(
            "    {{\n      \"m\": {m}, \"k\": {k}, \"n\": {n},\n      \
             \"scalar_median_ns\": {scalar_ns},\n      \
             \"dispatched_median_ns\": {simd_ns},\n      \
             \"speedup\": {speedup:.4},\n      \"dispatched_gflops\": {gflops:.4}\n    }}"
        ));
    }
    kernels::set_simd_enabled(was);

    if kernels::simd_supported() {
        assert!(
            headline_speedup >= 2.0,
            "AVX2+FMA matmul path is only {headline_speedup:.2}x over the scalar \
             reference (committed floor: 2x)"
        );
    }

    // Tiled GEMM vs the row kernel, at shapes where the row kernel's
    // B-matrix traffic falls out of cache. The multi-threaded run records
    // the tile-parallel scaling on this host (which may be a single
    // hardware thread — scaling is recorded, never asserted).
    let tiled_shapes: [(usize, usize, usize); 2] = [(256, 256, 256), (512, 512, 512)];
    let pool = Runtime::new(threads);
    let mut tiled_rows = Vec::new();
    let mut best_tiled_speedup = 0.0f64;
    for &(m, k, n) in &tiled_shapes {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c) as f32 * 0.17).sin());
        let b = Matrix::from_fn(k, n, |r, c| ((r * 17 + c) as f32 * 0.23).cos());
        let mut out = Matrix::zeros(m, n);

        let mut run_leg = |mode: GemmMode, simd: bool, rt: &Runtime| -> (u128, Vec<u32>) {
            kernels::set_simd_enabled(simd);
            set_gemm_mode(mode);
            let ns = rt.install(|| {
                time_median_ns(samples, || {
                    a.matmul_into(&b, &mut out).expect("shape");
                    black_box(out.as_slice().first().copied());
                })
            });
            (ns, out.as_slice().iter().map(|v| v.to_bits()).collect())
        };
        let (row_ns, row_bits) = run_leg(GemmMode::Row, true, &seq);
        let (tiled_ns, tiled_bits) = run_leg(GemmMode::Tiled, true, &seq);
        let (tiled_mt_ns, tiled_mt_bits) = run_leg(GemmMode::Tiled, true, &pool);
        // The pinned scalar reference through the tiled driver: one call
        // is enough for the bit check.
        kernels::set_simd_enabled(false);
        set_gemm_mode(GemmMode::Tiled);
        a.matmul_into(&b, &mut out).expect("shape");
        let scalar_bits: Vec<u32> = out.as_slice().iter().map(|v| v.to_bits()).collect();
        kernels::set_simd_enabled(was);
        assert_eq!(row_bits, tiled_bits, "tiled GEMM diverges from row kernel at {m}x{k}x{n}");
        assert_eq!(tiled_bits, tiled_mt_bits, "tiled GEMM thread-count variance at {m}x{k}x{n}");
        assert_eq!(tiled_bits, scalar_bits, "tiled GEMM diverges from scalar at {m}x{k}x{n}");

        let flops = 2.0 * (m * k * n) as f64;
        let speedup = row_ns as f64 / tiled_ns.max(1) as f64;
        best_tiled_speedup = best_tiled_speedup.max(speedup);
        let row_gflops = flops / row_ns.max(1) as f64;
        let tiled_gflops = flops / tiled_ns.max(1) as f64;
        let tiled_mt_gflops = flops / tiled_mt_ns.max(1) as f64;
        println!(
            "bench attack_step/tiled: matmul {m}x{k}x{n} row {row_ns} ns ({row_gflops:.2} GF/s), \
             tiled {tiled_ns} ns ({tiled_gflops:.2} GF/s, {speedup:.2}x), \
             tiled x{threads} threads {tiled_mt_ns} ns ({tiled_mt_gflops:.2} GF/s)"
        );
        tiled_rows.push(format!(
            "      {{\n        \"m\": {m}, \"k\": {k}, \"n\": {n},\n        \
             \"row_median_ns\": {row_ns},\n        \"tiled_median_ns\": {tiled_ns},\n        \
             \"tiled_mt_median_ns\": {tiled_mt_ns},\n        \
             \"speedup\": {speedup:.4},\n        \"row_gflops\": {row_gflops:.4},\n        \
             \"tiled_gflops\": {tiled_gflops:.4},\n        \
             \"tiled_mt_gflops\": {tiled_mt_gflops:.4}\n      }}"
        ));
    }
    if kernels::simd_supported() {
        assert!(
            best_tiled_speedup >= 2.0,
            "tiled GEMM is only {best_tiled_speedup:.2}x over the row kernel \
             (committed floor: 2x single-threaded)"
        );
    }

    // Strided batch-of-clouds GEMM vs the per-cloud loop, at one seat
    // pool's worth of same-bucket clouds. Both legs run the production
    // (`Auto`) routing, so the delta isolates the shared-B packing win.
    let (bcount, bm, bk, bn) = (12, 96, 256, 256);
    let clouds: Vec<Matrix> = (0..bcount)
        .map(|i| Matrix::from_fn(bm, bk, |r, c| ((r * 29 + c * 7 + i) as f32 * 0.13).sin()))
        .collect();
    let bmat = Matrix::from_fn(bk, bn, |r, c| ((r * 17 + c) as f32 * 0.23).cos());
    let mut outs = vec![Matrix::zeros(bm, bn); bcount];
    set_gemm_mode(GemmMode::Auto);
    kernels::set_simd_enabled(was);
    let looped_ns = seq.install(|| {
        time_median_ns(samples, || {
            for (cloud, out) in clouds.iter().zip(&mut outs) {
                cloud.matmul_into(&bmat, out).expect("shape");
            }
            black_box(outs[0].as_slice().first().copied());
        })
    });
    let looped_bits: Vec<u32> =
        outs.iter().flat_map(|o| o.as_slice().iter().map(|v| v.to_bits())).collect();
    let refs: Vec<&Matrix> = clouds.iter().collect();
    let batched_ns = seq.install(|| {
        time_median_ns(samples, || {
            Matrix::matmul_batched_into(&refs, &bmat, &mut outs).expect("shape");
            black_box(outs[0].as_slice().first().copied());
        })
    });
    let batched_bits: Vec<u32> =
        outs.iter().flat_map(|o| o.as_slice().iter().map(|v| v.to_bits())).collect();
    assert_eq!(looped_bits, batched_bits, "batched GEMM diverges from the per-cloud loop");
    let batched_speedup = looped_ns as f64 / batched_ns.max(1) as f64;
    let batched_flops = 2.0 * (bcount * bm * bk * bn) as f64;
    let batched_gflops = batched_flops / batched_ns.max(1) as f64;
    println!(
        "bench attack_step/batched: {bcount} clouds {bm}x{bk}x{bn} looped {looped_ns} ns, \
         batched {batched_ns} ns ({batched_speedup:.2}x, {batched_gflops:.2} GF/s)"
    );
    set_gemm_mode(was_mode);

    let json = format!(
        "{{\n  \"benchmark\": \"simd_kernels\",\n  \"features\": \"{}\",\n  \
         \"simd_supported\": {},\n  \"samples\": {samples},\n  \
         \"host_parallelism\": {host},\n  \
         \"best_matmul_speedup\": {headline_speedup:.4},\n  \"matmul\": [\n{}\n  ],\n  \
         \"tiled\": {{\n    \"isa\": \"{}\",\n    \"threads\": {threads},\n    \
         \"best_tiled_speedup\": {best_tiled_speedup:.4},\n    \"shapes\": [\n{}\n    ]\n  }},\n  \
         \"batched\": {{\n    \"clouds\": {bcount},\n    \
         \"m\": {bm}, \"k\": {bk}, \"n\": {bn},\n    \
         \"looped_median_ns\": {looped_ns},\n    \"batched_median_ns\": {batched_ns},\n    \
         \"speedup\": {batched_speedup:.4},\n    \
         \"batched_gflops\": {batched_gflops:.4}\n  }}\n}}\n",
        kernels::features(),
        kernels::simd_supported(),
        rows.join(",\n"),
        kernels::gemm_isa().name(),
        tiled_rows.join(",\n"),
        host = host_parallelism(),
    );
    write_json("BENCH_simd", &json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let alloc_only = args.iter().any(|a| a == "--alloc-only");
    let simd_only = args.iter().any(|a| a == "--simd-only");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4);
    if alloc_only {
        bench_alloc(if quick { 128 } else { POINTS }, if quick { "tiny" } else { "small" });
    } else if simd_only {
        bench_simd(if quick { 9 } else { 25 }, threads);
    } else if quick {
        // 384 points (not 128): large enough that the cached geometry
        // dominates measurement noise, so the planned/unplanned speedup
        // is meaningful even at smoke-test scale.
        bench_planned_vs_unplanned(384, 7, "tiny");
        bench_parallel(128, 4, 3, threads, "tiny");
        bench_alloc(128, "tiny");
        bench_simd(9, threads);
    } else {
        component_benches();
        bench_planned_vs_unplanned(POINTS, 11, "small");
        bench_parallel(POINTS, 4, 3, threads, "small");
        bench_alloc(POINTS, "small");
        bench_simd(25, threads);
    }
}
