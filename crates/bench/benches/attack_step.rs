//! Criterion benches for the attack's building blocks: the tanh
//! reparameterization, the smoothness penalty, the CW hinges, and one
//! full COLPER iteration.

use colper_attack::{AttackConfig, Colper, TanhReparam};
use colper_autodiff::Tape;
use colper_geom::knn_graph;
use colper_models::{CloudTensors, PointNet2, PointNet2Config};
use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_tensor::Matrix;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POINTS: usize = 512;

fn tensors() -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(POINTS)).generate(2);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

fn bench_components(c: &mut Criterion) {
    let t = tensors();
    let mut group = c.benchmark_group("attack_components");

    let reparam = TanhReparam::color();
    group.bench_function("tanh_to_w_512", |b| {
        b.iter(|| reparam.to_w(black_box(&t.colors)));
    });

    let nbrs = knn_graph(&t.coords, 10);
    group.bench_function("smoothness_alpha10_512", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let colors = tape.leaf(t.colors.clone());
            let s = tape.smoothness(colors, &t.xyz, &nbrs, 10);
            tape.backward(s);
            tape.grad(colors).unwrap().sum()
        });
    });

    let labels = t.labels.clone();
    let mask = vec![true; POINTS];
    group.bench_function("cw_hinge_512x13", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = tape.leaf(Matrix::from_fn(POINTS, 13, |r, c| ((r * 13 + c) % 7) as f32));
            let l = tape.cw_nontargeted(logits, &labels, &mask);
            tape.backward(l);
            tape.grad(logits).unwrap().sum()
        });
    });
    group.finish();
}

fn bench_full_iteration(c: &mut Criterion) {
    let t = tensors();
    let mut rng = StdRng::seed_from_u64(0);
    let model = PointNet2::new(PointNet2Config::small(13), &mut rng);
    let mut group = c.benchmark_group("attack_iteration");
    group.sample_size(10);
    group.bench_function("colper_one_step_pointnet_512", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let attack = Colper::new(AttackConfig::non_targeted(1));
            let mask = vec![true; t.len()];
            attack.run(&model, &t, &mask, &mut rng).l2_sq
        });
    });
    group.finish();
}

criterion_group!(benches, bench_components, bench_full_iteration);
criterion_main!(benches);
