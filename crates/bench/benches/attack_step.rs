//! Benches for the attack's building blocks (tanh reparameterization,
//! smoothness penalty, CW hinges) plus the headline comparison this
//! target exists for: one COLPER step with a cached [`AttackPlan`]
//! versus one step that rebuilds all static geometry from scratch.
//!
//! The comparison is emitted machine-readably to
//! `results/BENCH_attack_step.json`. Pass `--quick` (CI does) to skip
//! the component benches and run the comparison at smoke-test scale.

use colper_attack::{AttackConfig, AttackPlan, Colper, TanhReparam};
use colper_autodiff::Tape;
use colper_bench::write_json;
use colper_geom::knn_graph;
use colper_models::{CloudTensors, PointNet2, PointNet2Config};
use colper_runtime::Runtime;
use colper_scene::{normalize, IndoorSceneConfig, SceneGenerator};
use colper_tensor::Matrix;
use criterion::{black_box, criterion_group, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

const POINTS: usize = 512;

fn tensors(points: usize) -> CloudTensors {
    let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(2);
    CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
}

fn bench_components(c: &mut Criterion) {
    let t = tensors(POINTS);
    let mut group = c.benchmark_group("attack_components");

    let reparam = TanhReparam::color();
    group.bench_function("tanh_to_w_512", |b| {
        b.iter(|| reparam.to_w(black_box(&t.colors)));
    });

    let nbrs = knn_graph(&t.coords, 10);
    group.bench_function("smoothness_alpha10_512", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let colors = tape.leaf(t.colors.clone());
            let s = tape.smoothness(colors, &t.xyz, &nbrs, 10);
            tape.backward(s);
            tape.grad(colors).unwrap().sum()
        });
    });

    let labels = t.labels.clone();
    let mask = vec![true; POINTS];
    group.bench_function("cw_hinge_512x13", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let logits = tape.leaf(Matrix::from_fn(POINTS, 13, |r, c| ((r * 13 + c) % 7) as f32));
            let l = tape.cw_nontargeted(logits, &labels, &mask);
            tape.backward(l);
            tape.grad(logits).unwrap().sum()
        });
    });
    group.finish();
}

criterion_group!(component_benches, bench_components);

fn median(samples: &mut [u128]) -> u128 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Times `routine` `samples` times (after one untimed warm-up) and
/// returns the median nanoseconds per call.
fn time_median_ns(samples: usize, mut routine: impl FnMut()) -> u128 {
    routine();
    let mut ns: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            routine();
            t0.elapsed().as_nanos()
        })
        .collect();
    median(&mut ns)
}

/// One attack step with the plan rebuilt from scratch vs. reused from a
/// cache — the amortization the GeometryPlan layer buys per iteration.
fn bench_planned_vs_unplanned(points: usize, samples: usize, model_scale: &str) {
    let t = tensors(points);
    let mut rng = StdRng::seed_from_u64(0);
    let model = match model_scale {
        "tiny" => PointNet2::new(PointNet2Config::tiny(13), &mut rng),
        _ => PointNet2::new(PointNet2Config::small(13), &mut rng),
    };
    let config = AttackConfig::non_targeted(1);
    let mask = vec![true; t.len()];

    let unplanned_ns = time_median_ns(samples, || {
        let mut rng = StdRng::seed_from_u64(3);
        // `run` builds a fresh AttackPlan internally every call — this
        // is what every attack step paid before the cache existed.
        black_box(Colper::new(config.clone()).run(&model, &t, &mask, &mut rng).l2_sq);
    });

    let plan = AttackPlan::build(&model, &t, &config);
    let planned_ns = time_median_ns(samples, || {
        let mut rng = StdRng::seed_from_u64(3);
        black_box(
            Colper::new(config.clone()).run_planned(&model, &t, &mask, &plan, &mut rng).l2_sq,
        );
    });

    let speedup = unplanned_ns as f64 / planned_ns.max(1) as f64;
    println!(
        "bench attack_step/planned_vs_unplanned: unplanned {unplanned_ns} ns, \
         planned {planned_ns} ns ({speedup:.2}x), {points} points, {samples} samples"
    );
    let json = format!(
        "{{\n  \"benchmark\": \"attack_step\",\n  \"model\": \"pointnet2_{model_scale}\",\n  \
         \"points\": {points},\n  \"samples\": {samples},\n  \
         \"unplanned_median_ns\": {unplanned_ns},\n  \"planned_median_ns\": {planned_ns},\n  \
         \"speedup\": {speedup:.4}\n}}\n"
    );
    write_json("BENCH_attack_step", &json);
}

/// A COLPER attack on the work-stealing pool vs. the sequential runtime.
///
/// Beyond timing, this is the bit-identity gate for the runtime: the two
/// executions must produce the same adversarial sample down to the last
/// bit, and the emitted `results/BENCH_parallel.json` keeps the metric
/// block separate from the timing block so CI can diff metric blocks
/// across `--threads` values (timings legitimately differ; results may
/// not).
fn bench_parallel(points: usize, steps: usize, samples: usize, threads: usize, model_scale: &str) {
    let t = tensors(points);
    let mut rng = StdRng::seed_from_u64(0);
    let model = match model_scale {
        "tiny" => PointNet2::new(PointNet2Config::tiny(13), &mut rng),
        _ => PointNet2::new(PointNet2Config::small(13), &mut rng),
    };
    let mut config = AttackConfig::non_targeted(steps);
    // Two EoT samples per step so the sample-level fan-out is exercised
    // on top of the tensor/geometry kernels.
    config.gradient_samples = 2;
    config.convergence_threshold = Some(0.0); // never stop early
    let mask = vec![true; t.len()];
    let plan = AttackPlan::build(&model, &t, &config);

    let run_with = |rt: &Runtime| {
        let mut rng = StdRng::seed_from_u64(3);
        Colper::new(config.clone())
            .with_runtime(rt.clone())
            .run_planned(&model, &t, &mask, &plan, &mut rng)
    };

    let sequential = Runtime::sequential();
    let pool = Runtime::new(threads);
    let sequential_ns = time_median_ns(samples, || {
        black_box(run_with(&sequential).l2_sq);
    });
    let pool_ns = time_median_ns(samples, || {
        black_box(run_with(&pool).l2_sq);
    });

    let seq_result = run_with(&sequential);
    let pool_result = run_with(&pool);
    assert_eq!(
        seq_result.adversarial_colors, pool_result.adversarial_colors,
        "pool attack must be bit-identical to sequential"
    );
    assert_eq!(seq_result.predictions, pool_result.predictions);
    assert_eq!(seq_result.gain_history, pool_result.gain_history);

    // Order-sensitive digest of the whole gain trajectory, in raw bits.
    let gain_digest =
        seq_result.gain_history.iter().fold(0u64, |h, g| h.rotate_left(7) ^ u64::from(g.to_bits()));
    let host = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);

    let speedup = sequential_ns as f64 / pool_ns.max(1) as f64;
    println!(
        "bench attack_step/parallel: sequential {sequential_ns} ns, \
         pool({threads}) {pool_ns} ns ({speedup:.2}x), {points} points, host parallelism {host}"
    );
    let json = format!(
        "{{\n  \"benchmark\": \"attack_parallel\",\n  \"model\": \"pointnet2_{model_scale}\",\n  \
         \"points\": {points},\n  \"steps\": {steps},\n  \"samples\": {samples},\n  \
         \"threads\": {threads},\n  \"host_parallelism\": {host},\n  \
         \"timing\": {{\n    \"sequential_median_ns\": {sequential_ns},\n    \
         \"pool_median_ns\": {pool_ns},\n    \"speedup\": {speedup:.4}\n  }},\n  \
         \"metrics\": {{\n    \"l2_sq_bits\": {l2_bits},\n    \
         \"success_metric_bits\": {sm_bits},\n    \"steps_run\": {steps_run},\n    \
         \"gain_digest\": {gain_digest}\n  }}\n}}\n",
        l2_bits = seq_result.l2_sq.to_bits(),
        sm_bits = seq_result.success_metric.to_bits(),
        steps_run = seq_result.steps_run,
    );
    write_json("BENCH_parallel", &json);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(4);
    if quick {
        bench_planned_vs_unplanned(128, 5, "tiny");
        bench_parallel(128, 4, 3, threads, "tiny");
    } else {
        component_benches();
        bench_planned_vs_unplanned(POINTS, 11, "small");
        bench_parallel(POINTS, 4, 3, threads, "small");
    }
}
