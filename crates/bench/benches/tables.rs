//! Criterion benches timing reduced end-to-end table pipelines: one
//! sample, short attack, untrained-but-architecturally-faithful models.
//! These track the cost of regenerating each paper artefact rather than
//! its numbers (use the `table*` binaries for the numbers).

use colper_attack::{
    AttackConfig, AttackSession, L0Attack, L0AttackConfig, NoiseBaseline, PerturbTarget,
};
use colper_models::{CloudTensors, PointNet2, PointNet2Config, ResGcn, ResGcnConfig};
use colper_scene::{normalize, IndoorClass, IndoorSceneConfig, RoomKind, SceneGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POINTS: usize = 256;
const STEPS: usize = 8;

fn office(view: fn(&colper_scene::PointCloud) -> colper_scene::PointCloud) -> CloudTensors {
    let cfg = IndoorSceneConfig {
        room_kind: Some(RoomKind::Office),
        ..IndoorSceneConfig::with_points(POINTS)
    };
    CloudTensors::from_cloud(&view(&SceneGenerator::indoor(cfg).generate(5)))
}

fn bench_table_pipelines(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let pointnet = PointNet2::new(PointNet2Config::tiny(13), &mut rng);
    let resgcn = ResGcn::new(ResGcnConfig::tiny(13), &mut rng);
    let pn_t = office(normalize::pointnet_view);
    let rg_t = office(normalize::resgcn_view);

    let mut group = c.benchmark_group("table_pipelines");
    group.sample_size(10);

    group.bench_function("table1_cell_nontargeted_plus_baseline", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            let attack = AttackSession::new(AttackConfig::non_targeted(STEPS));
            let mask = vec![true; pn_t.len()];
            let result = attack.run_with_rng(&pointnet, &pn_t, &mut rng);
            let baseline = NoiseBaseline::new(result.l2_sq).run(&pointnet, &pn_t, &mask, &mut rng);
            (result.success_metric, baseline.success_metric)
        });
    });

    group.bench_function("table2_cell_targeted_board_to_wall", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mask: Vec<bool> =
                pn_t.labels.iter().map(|&l| l == IndoorClass::Board.label()).collect();
            if !mask.iter().any(|&m| m) {
                return 0.0;
            }
            let attack =
                AttackSession::new(AttackConfig::targeted(STEPS, IndoorClass::Wall.label()))
                    .mask_source_class(IndoorClass::Board.label());
            attack.run_with_rng(&pointnet, &pn_t, &mut rng).success_metric
        });
    });

    group.bench_function("table7_cell_l0_color", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(3);
            let mut cfg = L0AttackConfig::new(PerturbTarget::Color);
            cfg.steps_per_round = 3;
            cfg.restore_per_round = POINTS / 4;
            L0Attack::new(cfg).run(&resgcn, &rg_t, &mut rng).accuracy
        });
    });

    group.bench_function("table8_cell_transfer_eq10", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let cloud = SceneGenerator::indoor(IndoorSceneConfig::with_points(POINTS)).generate(6);
            let view = normalize::resgcn_view(&cloud);
            let t = CloudTensors::from_cloud(&view);
            let attack = AttackSession::new(AttackConfig::non_targeted(STEPS));
            let result = attack.run_with_rng(&resgcn, &t, &mut rng);
            let adv = colper_attack::apply_adversarial_colors(&view, &result.adversarial_colors);
            let transferred = normalize::eq10_transform(&adv);
            colper_attack::evaluate_cloud(&pointnet, &transferred, &mut rng).accuracy
        });
    });

    group.finish();
}

criterion_group!(benches, bench_table_pipelines);
criterion_main!(benches);
