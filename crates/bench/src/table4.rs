//! **Table 4**: outdoor targeted attack — car points driven toward
//! man-made terrain, natural terrain, high vegetation and low
//! vegetation, against RandLA-Net.

use crate::{parallel_map, ModelZoo};
use colper_attack::{AttackConfig, AttackSession};
use colper_metrics::{oob_metrics, success_rate};
use colper_models::CloudTensors;
use colper_scene::OutdoorClass;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Minimum car points for a scene to qualify.
const MIN_CAR_POINTS: usize = 15;

/// One target-class row.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Target class (car is always the source).
    pub target: OutdoorClass,
    /// Mean perturbation L2.
    pub l2: f32,
    /// Total attacked (car) points.
    pub points: usize,
    /// Point-weighted success rate.
    pub sr: f32,
    /// Mean out-of-band accuracy.
    pub oob_acc: f32,
    /// Mean overall accuracy.
    pub acc: f32,
    /// Mean out-of-band aIoU.
    pub oob_miou: f32,
    /// Mean overall aIoU.
    pub miou: f32,
}

/// The outdoor targeted-attack results.
#[derive(Debug, Clone)]
pub struct Table4Report {
    /// One row per target class.
    pub rows: Vec<Table4Row>,
    /// Scenes used.
    pub scenes_used: usize,
}

/// Runs the Table 4 experiment.
pub fn run(zoo: &ModelZoo) -> Table4Report {
    let prepared = zoo.prepared_outdoor();
    let source = OutdoorClass::Car.label();
    let usable: Vec<&CloudTensors> = prepared
        .eval
        .iter()
        .filter(|t| t.labels.iter().filter(|&&l| l == source).count() >= MIN_CAR_POINTS)
        .take(zoo.config.targeted_samples.max(2))
        .collect();
    let model = &zoo.randla_outdoor;
    let classes = 8;
    let mut rows = Vec::new();
    for target in OutdoorClass::targeted_attack_targets() {
        let outcomes = parallel_map(&zoo.runtime, &usable, |i, t| {
            let mut rng = StdRng::seed_from_u64(31_000 + i as u64 + target.label() as u64 * 97);
            let mask: Vec<bool> = t.labels.iter().map(|&l| l == source).collect();
            // The paper runs 1000 iterations; at reduced step budgets the
            // targeted objective needs a proportionally larger step size
            // to cover the same color distance.
            let mut cfg = AttackConfig::targeted(zoo.config.attack_steps.max(240), target.label());
            if cfg.steps < 1000 {
                cfg.lr = 0.05;
            }
            let attack = AttackSession::new(cfg).mask_source_class(source);
            let result = attack.run_with_rng(model, t, &mut rng);
            let targets = vec![target.label(); t.len()];
            let sr = success_rate(&result.predictions, &targets, &mask);
            let pts = mask.iter().filter(|&&m| m).count();
            let stats = oob_metrics(&result.predictions, &t.labels, &mask, classes);
            (result.l2(), sr, pts, stats)
        });
        if outcomes.is_empty() {
            continue;
        }
        let total_points: usize = outcomes.iter().map(|o| o.2).sum();
        let sr =
            outcomes.iter().map(|o| o.1 * o.2 as f32).sum::<f32>() / total_points.max(1) as f32;
        let n = outcomes.len() as f32;
        rows.push(Table4Row {
            target,
            l2: outcomes.iter().map(|o| o.0).sum::<f32>() / n,
            points: total_points,
            sr,
            oob_acc: outcomes.iter().map(|o| o.3.oob_accuracy).sum::<f32>() / n,
            acc: outcomes.iter().map(|o| o.3.accuracy).sum::<f32>() / n,
            oob_miou: outcomes.iter().map(|o| o.3.oob_miou).sum::<f32>() / n,
            miou: outcomes.iter().map(|o| o.3.miou).sum::<f32>() / n,
        });
    }
    Table4Report { rows, scenes_used: usable.len() }
}

impl fmt::Display for Table4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Table 4: targeted attack car -> terrain/vegetation (RandLA-Net, {} scenes) ==",
            self.scenes_used
        )?;
        writeln!(
            f,
            "{:<30} {:>7} {:>8} {:>8} {:>17} {:>17}",
            "setting", "L2", "points", "SR", "OOB acc / acc", "OOB IoU / IoU"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>7.2} {:>8} {:>7.2}% {:>7.2}%/{:>7.2}% {:>7.2}%/{:>7.2}%",
                format!("randla-net({})", r.target),
                r.l2,
                r.points,
                r.sr * 100.0,
                r.oob_acc * 100.0,
                r.acc * 100.0,
                r.oob_miou * 100.0,
                r.miou * 100.0
            )?;
        }
        Ok(())
    }
}
