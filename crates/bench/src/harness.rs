//! Shared harness: scaling knobs, the trained-model zoo with on-disk
//! caching, prepared dataset views, and a small parallel map.

use colper_models::ResGcnConfig;
use colper_models::{
    train_model, CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn,
    SegmentationModel, TrainConfig,
};
use colper_nn::{load_params, save_params};
use colper_runtime::Runtime;
use colper_scene::{
    normalize, IndoorSceneConfig, OutdoorSceneConfig, S3disLikeDataset, Semantic3dLikeDataset,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::{BufReader, BufWriter, Write as _};
use std::path::PathBuf;
use std::time::Instant;

/// Scaling knobs for every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchConfig {
    /// Points per cloud.
    pub points: usize,
    /// Training rooms per indoor area.
    pub train_rooms_per_area: usize,
    /// Training epoch cap.
    pub train_epochs: usize,
    /// COLPER iteration budget (the paper runs 1000).
    pub attack_steps: usize,
    /// Samples per model for the non-targeted tables.
    pub eval_samples: usize,
    /// Samples per (model, class) cell for the targeted tables.
    pub targeted_samples: usize,
    /// Whether weight caching in `artifacts/` is enabled.
    pub cache: bool,
}

impl BenchConfig {
    /// The default (CPU-minutes) scale.
    pub fn standard() -> Self {
        Self {
            points: 512,
            train_rooms_per_area: 6,
            train_epochs: 14,
            attack_steps: 120,
            eval_samples: 8,
            targeted_samples: 4,
            cache: true,
        }
    }

    /// A smoke-test scale (seconds).
    pub fn quick() -> Self {
        Self {
            points: 256,
            train_rooms_per_area: 3,
            train_epochs: 8,
            attack_steps: 40,
            eval_samples: 3,
            targeted_samples: 2,
            cache: true,
        }
    }

    /// A closer-to-paper scale (CPU-hours).
    pub fn full() -> Self {
        Self {
            points: 1024,
            train_rooms_per_area: 10,
            train_epochs: 20,
            attack_steps: 400,
            eval_samples: 20,
            targeted_samples: 10,
            cache: true,
        }
    }

    /// Reads the scale from `COLPER_FULL` / `COLPER_QUICK`.
    pub fn from_env() -> Self {
        if std::env::var_os("COLPER_FULL").is_some() {
            Self::full()
        } else if std::env::var_os("COLPER_QUICK").is_some() {
            Self::quick()
        } else {
            Self::standard()
        }
    }

    fn cache_tag(&self) -> String {
        format!("p{}r{}e{}", self.points, self.train_rooms_per_area, self.train_epochs)
    }
}

/// An indoor dataset prepared in one model's normalized view.
#[derive(Debug)]
pub struct PreparedIndoor {
    /// The underlying dataset.
    pub dataset: S3disLikeDataset,
    /// Evaluation (Area 5) clouds in the model view.
    pub eval: Vec<CloudTensors>,
    /// "Office 33" fixture blocks in the model view.
    pub office33: Vec<CloudTensors>,
}

/// An outdoor dataset prepared in RandLA-Net's view.
#[derive(Debug)]
pub struct PreparedOutdoor {
    /// The underlying dataset.
    pub dataset: Semantic3dLikeDataset,
    /// Evaluation clouds in the model view.
    pub eval: Vec<CloudTensors>,
}

/// The trained victim models, with on-disk weight caching under
/// `artifacts/`.
pub struct ModelZoo {
    /// Harness configuration used to build the zoo.
    pub config: BenchConfig,
    /// The shared compute runtime every experiment schedules onto
    /// (honors `COLPER_THREADS`, defaulting to the host parallelism).
    pub runtime: Runtime,
    /// PointNet++ trained on the indoor data (PointNet++ view).
    pub pointnet: PointNet2,
    /// A second PointNet++ trained with different initialization — the
    /// "self-trained" transfer victim of Table 8.
    pub pointnet_alt: PointNet2,
    /// ResGCN trained on the indoor data (ResGCN view).
    pub resgcn: ResGcn,
    /// RandLA-Net trained on the indoor data (RandLA view).
    pub randla_indoor: RandLaNet,
    /// RandLA-Net trained on the outdoor data.
    pub randla_outdoor: RandLaNet,
    /// Indoor dataset.
    pub indoor: S3disLikeDataset,
    /// Outdoor dataset.
    pub outdoor: Semantic3dLikeDataset,
}

impl ModelZoo {
    /// Builds (or loads from cache) the whole zoo. Prints progress to
    /// stderr because training can take minutes on first run.
    pub fn load_or_train(config: &BenchConfig) -> Self {
        Self::load_or_train_on(config, Runtime::from_env())
    }

    /// [`ModelZoo::load_or_train`] on an explicit runtime (the CLI's
    /// `--threads` flag lands here). The runtime is installed for the
    /// duration of training so geometry planning parallelizes, and kept
    /// in the zoo for the experiments to schedule onto.
    pub fn load_or_train_on(config: &BenchConfig, runtime: Runtime) -> Self {
        let indoor = S3disLikeDataset::new(
            IndoorSceneConfig::with_points(config.points),
            config.train_rooms_per_area,
        );
        let outdoor =
            Semantic3dLikeDataset::new(OutdoorSceneConfig::with_points(config.points), 18);

        let train_cfg =
            TrainConfig { epochs: config.train_epochs, lr: 0.01, target_accuracy: 0.95 };

        let indoor_train = |view: fn(&colper_scene::PointCloud) -> colper_scene::PointCloud| {
            indoor
                .train_rooms()
                .iter()
                .map(|c| CloudTensors::from_cloud(&view(c)))
                .collect::<Vec<_>>()
        };

        let (pointnet, pointnet_alt, resgcn, randla_indoor, randla_outdoor) =
            runtime.install(|| {
                let pointnet = train_cached(
                    config,
                    "pointnet",
                    || PointNet2::new(PointNet2Config::small(13), &mut StdRng::seed_from_u64(11)),
                    |mut m| {
                        let mut rng = StdRng::seed_from_u64(11);
                        let clouds = indoor_train(normalize::pointnet_view);
                        let report = train_model(&mut m, &clouds, &train_cfg, &mut rng);
                        eprintln!(
                            "  pointnet: acc {:.3} after {} epochs",
                            report.final_accuracy, report.epochs_run
                        );
                        m
                    },
                );
                let pointnet_alt = train_cached(
                    config,
                    "pointnet_alt",
                    || PointNet2::new(PointNet2Config::small(13), &mut StdRng::seed_from_u64(77)),
                    |mut m| {
                        let mut rng = StdRng::seed_from_u64(77);
                        let clouds = indoor_train(normalize::pointnet_view);
                        let report = train_model(&mut m, &clouds, &train_cfg, &mut rng);
                        eprintln!(
                            "  pointnet_alt: acc {:.3} after {} epochs",
                            report.final_accuracy, report.epochs_run
                        );
                        m
                    },
                );
                let resgcn = train_cached(
                    config,
                    "resgcn",
                    || ResGcn::new(ResGcnConfig::small(13), &mut StdRng::seed_from_u64(22)),
                    |mut m| {
                        let mut rng = StdRng::seed_from_u64(22);
                        let clouds = indoor_train(normalize::resgcn_view);
                        let report = train_model(&mut m, &clouds, &train_cfg, &mut rng);
                        eprintln!(
                            "  resgcn: acc {:.3} after {} epochs",
                            report.final_accuracy, report.epochs_run
                        );
                        m
                    },
                );
                let randla_indoor = train_cached(
                    config,
                    "randla_indoor",
                    || RandLaNet::new(RandLaNetConfig::small(13), &mut StdRng::seed_from_u64(33)),
                    |mut m| {
                        let mut rng = StdRng::seed_from_u64(33);
                        let clouds: Vec<CloudTensors> = indoor
                            .train_rooms()
                            .iter()
                            .map(|c| {
                                CloudTensors::from_cloud(&normalize::randla_view(
                                    c,
                                    c.len(),
                                    &mut rng,
                                ))
                            })
                            .collect();
                        let report = train_model(&mut m, &clouds, &train_cfg, &mut rng);
                        eprintln!(
                            "  randla_indoor: acc {:.3} after {} epochs",
                            report.final_accuracy, report.epochs_run
                        );
                        m
                    },
                );
                let randla_outdoor = train_cached(
                    config,
                    "randla_outdoor",
                    || RandLaNet::new(RandLaNetConfig::small(8), &mut StdRng::seed_from_u64(44)),
                    |mut m| {
                        let mut rng = StdRng::seed_from_u64(44);
                        let clouds: Vec<CloudTensors> = outdoor
                            .train_scenes()
                            .iter()
                            .map(|c| {
                                CloudTensors::from_cloud(&normalize::randla_view(
                                    c,
                                    c.len(),
                                    &mut rng,
                                ))
                            })
                            .collect();
                        let report = train_model(&mut m, &clouds, &train_cfg, &mut rng);
                        eprintln!(
                            "  randla_outdoor: acc {:.3} after {} epochs",
                            report.final_accuracy, report.epochs_run
                        );
                        m
                    },
                );
                (pointnet, pointnet_alt, resgcn, randla_indoor, randla_outdoor)
            });

        Self {
            config: config.clone(),
            runtime,
            pointnet,
            pointnet_alt,
            resgcn,
            randla_indoor,
            randla_outdoor,
            indoor,
            outdoor,
        }
    }

    /// Area-5 evaluation clouds plus office blocks in one model view.
    pub fn prepared_indoor(
        &self,
        view: fn(&colper_scene::PointCloud) -> colper_scene::PointCloud,
    ) -> PreparedIndoor {
        let eval =
            self.indoor.eval_rooms().iter().map(|c| CloudTensors::from_cloud(&view(c))).collect();
        let office33 = self
            .indoor
            .office33_blocks(self.config.targeted_samples.max(2))
            .iter()
            .map(|c| CloudTensors::from_cloud(&view(c)))
            .collect();
        PreparedIndoor { dataset: self.indoor.clone(), eval, office33 }
    }

    /// Outdoor evaluation clouds in RandLA-Net's view.
    pub fn prepared_outdoor(&self) -> PreparedOutdoor {
        let mut rng = StdRng::seed_from_u64(4242);
        let eval = self
            .outdoor
            .eval_scenes()
            .iter()
            .map(|c| CloudTensors::from_cloud(&normalize::randla_view(c, c.len(), &mut rng)))
            .collect();
        PreparedOutdoor { dataset: self.outdoor.clone(), eval }
    }
}

fn artifacts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../artifacts")
}

/// Loads cached weights into a freshly built architecture, or trains and
/// caches. `build` must construct the same architecture the cache was
/// written for; a layout mismatch falls back to training.
fn train_cached<M: SegmentationModel>(
    config: &BenchConfig,
    name: &str,
    build: impl FnOnce() -> M,
    train: impl FnOnce(M) -> M,
) -> M {
    let path = artifacts_dir().join(format!("{name}-{}.clpr", config.cache_tag()));
    let mut model = build();
    if config.cache {
        if let Ok(file) = File::open(&path) {
            if let Ok(params) = load_params(BufReader::new(file)) {
                if params.param_count() == model.params().param_count()
                    && params.buffer_count() == model.params().buffer_count()
                {
                    *model.params_mut() = params;
                    eprintln!("  {name}: loaded cached weights from {}", path.display());
                    return model;
                }
                eprintln!("  {name}: cache layout mismatch, retraining");
            }
        }
    }
    let started = Instant::now();
    eprintln!("  {name}: training (no cache hit)...");
    let model = train(model);
    eprintln!("  {name}: trained in {:.1}s", started.elapsed().as_secs_f32());
    if config.cache {
        let _ = std::fs::create_dir_all(artifacts_dir());
        if let Ok(file) = File::create(&path) {
            let _ = save_params(model.params(), BufWriter::new(file));
        }
    }
    model
}

/// Maps `f` over `items` on `runtime`, preserving order. Each item is one
/// stealable pool task, so a skewed item (a slow attack) never strands the
/// rest of a statically pre-assigned chunk.
pub fn parallel_map<T: Sync, R: Send>(
    runtime: &Runtime,
    items: &[T],
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    runtime.par_map_grained(items.len(), 1, |i| f(i, &items[i]))
}

/// Overall accuracy and aIoU of predictions against labels.
pub fn acc_miou(predictions: &[usize], labels: &[usize], classes: usize) -> (f32, f32) {
    let mut cm = colper_metrics::ConfusionMatrix::new(classes);
    cm.update(predictions, labels);
    (cm.accuracy(), cm.mean_iou())
}

/// Prints a report and writes it to `results/<name>.txt`.
pub fn write_report(name: &str, content: &str) {
    println!("{content}");
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("{name}.txt"));
    match File::create(&path) {
        Ok(mut file) => {
            let _ = file.write_all(content.as_bytes());
            eprintln!("(report written to {})", path.display());
        }
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

/// Writes machine-readable benchmark output to `results/<name>.json`
/// and returns the path written (None when the write failed).
pub fn write_json(name: &str, content: &str) -> Option<PathBuf> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if std::fs::create_dir_all(&dir).is_err() {
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match File::create(&path) {
        Ok(mut file) => {
            if file.write_all(content.as_bytes()).is_err() {
                return None;
            }
            eprintln!("(json written to {})", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_scales_are_ordered() {
        let q = BenchConfig::quick();
        let s = BenchConfig::standard();
        let f = BenchConfig::full();
        assert!(q.attack_steps < s.attack_steps && s.attack_steps < f.attack_steps);
        assert!(q.points <= s.points && s.points <= f.points);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..37).collect();
        let rt = Runtime::new(4);
        let out = parallel_map(&rt, &items, |i, &x| i * 1000 + x);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, i * 1000 + i);
        }
    }

    #[test]
    fn parallel_map_single_item() {
        let out = parallel_map(&Runtime::sequential(), &[5usize], |_, &x| x * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn cache_tag_depends_on_scale() {
        assert_ne!(BenchConfig::quick().cache_tag(), BenchConfig::full().cache_tag());
    }
}
