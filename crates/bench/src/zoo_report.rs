//! The "Target Models" section of the paper, regenerated: clean
//! accuracy and aIoU of every victim on its evaluation split, with
//! per-class breakdowns (the paper quotes the pre-trained checkpoints'
//! GitHub-reported numbers; ours come from the in-process training).

use crate::{ModelZoo, PreparedIndoor};
use colper_metrics::{ClassReport, ConfusionMatrix};
use colper_models::{CloudTensors, SegmentationModel};
use colper_scene::{normalize, IndoorClass, OutdoorClass};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One victim's clean evaluation.
#[derive(Debug, Clone)]
pub struct ZooEntry {
    /// Model name.
    pub model: String,
    /// Dataset label.
    pub dataset: String,
    /// Point accuracy over the evaluation split.
    pub accuracy: f32,
    /// aIoU over the evaluation split.
    pub miou: f32,
    /// Trainable scalar count.
    pub parameters: usize,
    /// Per-class breakdown.
    pub report: ClassReport,
}

/// The zoo's clean-performance report.
#[derive(Debug, Clone)]
pub struct ZooReport {
    /// One entry per victim.
    pub entries: Vec<ZooEntry>,
}

fn evaluate_indoor<M: SegmentationModel>(
    model: &M,
    prepared: &PreparedIndoor,
) -> (f32, f32, ClassReport) {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cm = ConfusionMatrix::new(13);
    for t in &prepared.eval {
        let preds = colper_models::predict(model, t, &mut rng);
        cm.update(&preds, &t.labels);
    }
    let names: Vec<&str> = IndoorClass::ALL.iter().map(|c| c.name()).collect();
    (cm.accuracy(), cm.mean_iou(), ClassReport::from_confusion(&cm, Some(&names)))
}

/// Evaluates every zoo model on its evaluation split.
pub fn run(zoo: &ModelZoo) -> ZooReport {
    let mut entries = Vec::new();

    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let (acc, miou, report) = evaluate_indoor(&zoo.pointnet, &pn);
    entries.push(ZooEntry {
        model: zoo.pointnet.name().to_string(),
        dataset: "S3DIS-like (Area 5)".into(),
        accuracy: acc,
        miou,
        parameters: zoo.pointnet.params().num_scalars(),
        report,
    });

    let rg = zoo.prepared_indoor(normalize::resgcn_view);
    let (acc, miou, report) = evaluate_indoor(&zoo.resgcn, &rg);
    entries.push(ZooEntry {
        model: zoo.resgcn.name().to_string(),
        dataset: "S3DIS-like (Area 5)".into(),
        accuracy: acc,
        miou,
        parameters: zoo.resgcn.params().num_scalars(),
        report,
    });

    let rl = zoo.prepared_indoor(|c| {
        let mut rng = StdRng::seed_from_u64(c.len() as u64 ^ 0x0AD1A);
        normalize::randla_view(c, c.len(), &mut rng)
    });
    let (acc, miou, report) = evaluate_indoor(&zoo.randla_indoor, &rl);
    entries.push(ZooEntry {
        model: format!("{} (indoor)", zoo.randla_indoor.name()),
        dataset: "S3DIS-like (Area 5)".into(),
        accuracy: acc,
        miou,
        parameters: zoo.randla_indoor.params().num_scalars(),
        report,
    });

    // Outdoor RandLA-Net.
    let prepared = zoo.prepared_outdoor();
    let mut rng = StdRng::seed_from_u64(0);
    let mut cm = ConfusionMatrix::new(8);
    for t in &prepared.eval {
        let preds: Vec<usize> = colper_models::predict(&zoo.randla_outdoor, t, &mut rng);
        cm.update(&preds, &t.labels);
    }
    let names: Vec<&str> = OutdoorClass::ALL.iter().map(|c| c.name()).collect();
    entries.push(ZooEntry {
        model: format!("{} (outdoor)", zoo.randla_outdoor.name()),
        dataset: "Semantic3D-like".into(),
        accuracy: cm.accuracy(),
        miou: cm.mean_iou(),
        parameters: zoo.randla_outdoor.params().num_scalars(),
        report: ClassReport::from_confusion(&cm, Some(&names)),
    });

    ZooReport { entries }
}

/// Per-model evaluation convenience used by tests.
pub fn clean_accuracy<M: SegmentationModel>(model: &M, clouds: &[CloudTensors]) -> f32 {
    let mut rng = StdRng::seed_from_u64(0);
    let mut cm = ConfusionMatrix::new(model.num_classes());
    for t in clouds {
        let preds = colper_models::predict(model, t, &mut rng);
        cm.update(&preds, &t.labels);
    }
    cm.accuracy()
}

impl fmt::Display for ZooReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Target models: clean evaluation (paper's Experiment Settings) ==")?;
        writeln!(
            f,
            "{:<24} {:<22} {:>9} {:>9} {:>10}",
            "model", "dataset", "acc", "aIoU", "params"
        )?;
        for e in &self.entries {
            writeln!(
                f,
                "{:<24} {:<22} {:>8.2}% {:>8.2}% {:>10}",
                e.model,
                e.dataset,
                e.accuracy * 100.0,
                e.miou * 100.0,
                e.parameters
            )?;
        }
        for e in &self.entries {
            writeln!(f, "\n-- {} per-class --\n{}", e.model, e.report)?;
        }
        Ok(())
    }
}
