//! Ablations over the attack's design choices (DESIGN.md calls these
//! out): the smoothness penalty weight λ2, the plateau-noise restarts,
//! the smoothness neighborhood size α, and the tanh reparameterization
//! (vs. a plain projected/clamped gradient descent).

use crate::{acc_miou, parallel_map, ModelZoo};
use colper_attack::{AttackConfig, AttackSession};
use colper_models::{CloudTensors, ModelInput, SegmentationModel};
use colper_nn::{AdamState, Forward};
use colper_scene::normalize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One ablation variant's mean results.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant description.
    pub variant: String,
    /// Mean post-attack accuracy (lower = stronger attack).
    pub adv_acc: f32,
    /// Mean post-attack aIoU.
    pub adv_miou: f32,
    /// Mean perturbation L2.
    pub l2: f32,
    /// Mean smoothness penalty value of the final sample.
    pub steps: f32,
}

/// The ablation study results.
#[derive(Debug, Clone)]
pub struct AblationsReport {
    /// Mean clean accuracy of the evaluation samples.
    pub clean_acc: f32,
    /// One row per variant.
    pub rows: Vec<AblationRow>,
}

fn run_variant(
    zoo: &ModelZoo,
    samples: &[CloudTensors],
    label: &str,
    config: AttackConfig,
) -> AblationRow {
    let classes = zoo.pointnet.num_classes();
    let outcomes = parallel_map(&zoo.runtime, samples, |i, t| {
        let mut rng = StdRng::seed_from_u64(71_000 + i as u64);
        let attack = AttackSession::new(config.clone());
        let result = attack.run_with_rng(&zoo.pointnet, t, &mut rng);
        let (acc, miou) = acc_miou(&result.predictions, &t.labels, classes);
        (acc, miou, result.l2(), result.steps_run as f32)
    });
    let n = outcomes.len().max(1) as f32;
    AblationRow {
        variant: label.to_string(),
        adv_acc: outcomes.iter().map(|o| o.0).sum::<f32>() / n,
        adv_miou: outcomes.iter().map(|o| o.1).sum::<f32>() / n,
        l2: outcomes.iter().map(|o| o.2).sum::<f32>() / n,
        steps: outcomes.iter().map(|o| o.3).sum::<f32>() / n,
    }
}

/// A projected-gradient variant without the tanh change of variables:
/// optimizes colors directly with Adam and clamps to `[0, 1]` after
/// every step. Used to quantify what Eq. 5 buys.
fn clamped_gradient_attack(zoo: &ModelZoo, samples: &[CloudTensors], steps: usize) -> AblationRow {
    let model = &zoo.pointnet;
    let classes = model.num_classes();
    let outcomes = parallel_map(&zoo.runtime, samples, |i, t| {
        let mut rng = StdRng::seed_from_u64(72_000 + i as u64);
        let n = t.len();
        let plan = model.plan(&t.coords);
        let orig = t.colors.clone();
        let mut colors = orig.clone();
        let mut adam = AdamState::new(n, 3);
        let mask = vec![true; n];
        let mut best_acc = f32::INFINITY;
        let mut best_preds = Vec::new();
        let mut best_colors = orig.clone();
        for _ in 0..steps {
            let mut session = Forward::new(model.params(), false);
            let color_var = session.tape.leaf(colors.clone());
            let xyz = session.tape.constant(t.xyz.clone());
            let loc = session.tape.constant(t.loc01.clone());
            let input =
                ModelInput { coords: &t.coords, xyz, color: color_var, loc, plan: Some(&plan) };
            let logits = model.forward(&mut session, &input, &mut rng);
            let orig_var = session.tape.constant(orig.clone());
            let diff = session.tape.sub(color_var, orig_var);
            let sq = session.tape.square(diff);
            let dist = session.tape.sum(sq);
            let adv = session.tape.cw_nontargeted(logits, &t.labels, &mask);
            let gain = session.tape.add(dist, adv);
            session.tape.backward(gain);
            let preds = session.tape.value(logits).argmax_rows();
            let (acc, _) = acc_miou(&preds, &t.labels, classes);
            if acc < best_acc {
                best_acc = acc;
                best_preds = preds;
                best_colors = colors.clone();
            }
            let grad = session.tape.grad(color_var).expect("color grad").clone();
            drop(session);
            adam.update(&mut colors, &grad, 0.01);
            colors = colors.clamp(0.0, 1.0);
        }
        let (acc, miou) = acc_miou(&best_preds, &t.labels, classes);
        let l2 = best_colors.sub(&orig).expect("shape").frobenius_sq().sqrt();
        (acc, miou, l2, steps as f32)
    });
    let n = outcomes.len().max(1) as f32;
    AblationRow {
        variant: "clamped gradient (no tanh reparam)".into(),
        adv_acc: outcomes.iter().map(|o| o.0).sum::<f32>() / n,
        adv_miou: outcomes.iter().map(|o| o.1).sum::<f32>() / n,
        l2: outcomes.iter().map(|o| o.2).sum::<f32>() / n,
        steps: outcomes.iter().map(|o| o.3).sum::<f32>() / n,
    }
}

/// Runs the ablation study on PointNet++.
pub fn run(zoo: &ModelZoo) -> AblationsReport {
    let steps = zoo.config.attack_steps;
    let n = zoo.config.eval_samples.clamp(2, 4);
    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let samples = &pn.eval[..n.min(pn.eval.len())];

    let mut rng = StdRng::seed_from_u64(0);
    let clean_acc = samples
        .iter()
        .map(|t| {
            let preds = colper_models::predict(&zoo.pointnet, t, &mut rng);
            acc_miou(&preds, &t.labels, 13).0
        })
        .sum::<f32>()
        / samples.len() as f32;

    let base = AttackConfig::non_targeted(steps);
    let rows = vec![
        run_variant(zoo, samples, "full COLPER (λ2=1, α=10, restarts)", base.clone()),
        run_variant(
            zoo,
            samples,
            "no smoothness (λ2=0)",
            AttackConfig { lambda2: 0.0, ..base.clone() },
        ),
        run_variant(
            zoo,
            samples,
            "no plateau restarts (noise=0)",
            AttackConfig { noise_scale: 0.0, ..base.clone() },
        ),
        run_variant(
            zoo,
            samples,
            "small neighborhood (α=5)",
            AttackConfig { alpha: 5, ..base.clone() },
        ),
        run_variant(
            zoo,
            samples,
            "large neighborhood (α=20)",
            AttackConfig { alpha: 20, ..base.clone() },
        ),
        run_variant(
            zoo,
            samples,
            "stronger distance weight (λ1=0.5)",
            AttackConfig { lambda1: 0.5, ..base },
        ),
        clamped_gradient_attack(zoo, samples, steps),
    ];

    AblationsReport { clean_acc, rows }
}

impl fmt::Display for AblationsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Ablations (PointNet++, clean acc {:.2}%) ==", self.clean_acc * 100.0)?;
        writeln!(
            f,
            "{:<40} {:>9} {:>9} {:>8} {:>7}",
            "variant", "adv acc", "adv aIoU", "L2", "steps"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<40} {:>8.2}% {:>8.2}% {:>8.2} {:>7.0}",
                r.variant,
                r.adv_acc * 100.0,
                r.adv_miou * 100.0,
                r.l2,
                r.steps
            )?;
        }
        Ok(())
    }
}
