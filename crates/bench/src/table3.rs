//! **Table 3**: non-targeted COLPER on Semantic3D-like outdoor scenes
//! against RandLA-Net, compared to the matched-L2 noise baseline.

use crate::table1::{attack_samples, SampleOutcome};
use crate::ModelZoo;
use std::fmt;

/// The outdoor non-targeted results.
#[derive(Debug, Clone)]
pub struct Table3Report {
    /// Mean clean accuracy.
    pub clean_acc: f32,
    /// Mean clean aIoU.
    pub clean_miou: f32,
    /// Per-scene outcomes.
    pub samples: Vec<SampleOutcome>,
}

/// Runs the Table 3 experiment.
pub fn run(zoo: &ModelZoo) -> Table3Report {
    let prepared = zoo.prepared_outdoor();
    let n = zoo.config.eval_samples.min(prepared.eval.len());
    let samples = attack_samples(
        &zoo.randla_outdoor,
        &prepared.eval[..n],
        zoo.config.attack_steps,
        &zoo.runtime,
    );
    let clean_acc = samples.iter().map(|s| s.clean_acc).sum::<f32>() / samples.len() as f32;
    let clean_miou = samples.iter().map(|s| s.clean_miou).sum::<f32>() / samples.len() as f32;
    Table3Report { clean_acc, clean_miou, samples }
}

impl fmt::Display for Table3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table 3: non-targeted attack on Semantic3D-like data (RandLA-Net) ==")?;
        writeln!(
            f,
            "{:<8} | {:>7} {:>8} {:>8} | {:>8} {:>8}",
            "case", "L2", "acc", "aIoU", "base acc", "base IoU"
        )?;
        writeln!(
            f,
            "{:<8} | {:>7} {:>7.2}% {:>7.2}% | {:>8} {:>8}",
            "clean",
            "-",
            self.clean_acc * 100.0,
            self.clean_miou * 100.0,
            "-",
            "-"
        )?;
        let mut by_acc = self.samples.clone();
        by_acc.sort_by(|a, b| a.adv_acc.partial_cmp(&b.adv_acc).unwrap());
        let rows: [(&str, Option<&SampleOutcome>); 2] =
            [("best", by_acc.first()), ("worst", by_acc.last())];
        let n = self.samples.len().max(1) as f32;
        let avg = |get: fn(&SampleOutcome) -> f32| self.samples.iter().map(get).sum::<f32>() / n;
        if let ("best", Some(b)) = rows[0] {
            writeln!(
                f,
                "{:<8} | {:>7.2} {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}%",
                "best",
                b.l2,
                b.adv_acc * 100.0,
                b.adv_miou * 100.0,
                b.base_acc * 100.0,
                b.base_miou * 100.0
            )?;
        }
        writeln!(
            f,
            "{:<8} | {:>7.2} {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}%",
            "average",
            avg(|s| s.l2),
            avg(|s| s.adv_acc) * 100.0,
            avg(|s| s.adv_miou) * 100.0,
            avg(|s| s.base_acc) * 100.0,
            avg(|s| s.base_miou) * 100.0
        )?;
        if let ("worst", Some(w)) = rows[1] {
            writeln!(
                f,
                "{:<8} | {:>7.2} {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}%",
                "worst",
                w.l2,
                w.adv_acc * 100.0,
                w.adv_miou * 100.0,
                w.base_acc * 100.0,
                w.base_miou * 100.0
            )?;
        }
        Ok(())
    }
}
