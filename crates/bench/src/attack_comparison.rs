//! COLPER vs. the classic gradient attacks it generalizes (FGSM, iFGSM,
//! PGD, the methods the paper's related-work section cites) — all
//! restricted to the color channels, on the same victims and samples.

use crate::{acc_miou, parallel_map, ModelZoo};
use colper_attack::{AttackConfig, AttackSession, ClassicAttack, ClassicKind};
use colper_models::CloudTensors;
use colper_scene::normalize;
use colper_tensor::Matrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One attack's aggregate row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Attack label.
    pub attack: String,
    /// Mean post-attack accuracy.
    pub accuracy: f32,
    /// Mean post-attack aIoU.
    pub miou: f32,
    /// Mean perturbation L2.
    pub l2: f32,
    /// Mean perturbation L∞.
    pub linf: f32,
    /// Forward/backward passes per sample.
    pub passes: usize,
}

/// The attack-comparison results.
#[derive(Debug, Clone)]
pub struct ComparisonReport {
    /// Mean clean accuracy of the samples.
    pub clean_acc: f32,
    /// One row per attack.
    pub rows: Vec<ComparisonRow>,
    /// Samples per row.
    pub samples: usize,
}

fn linf(a: &Matrix, b: &Matrix) -> f32 {
    a.max_abs_diff(b)
}

/// Runs the comparison on PointNet++.
pub fn run(zoo: &ModelZoo) -> ComparisonReport {
    let model = &zoo.pointnet;
    let steps = zoo.config.attack_steps;
    let n = zoo.config.eval_samples.clamp(3, 5);
    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let samples: Vec<CloudTensors> = pn.eval[..n.min(pn.eval.len())].to_vec();

    let mut rng = StdRng::seed_from_u64(0);
    let clean_acc = samples
        .iter()
        .map(|t| {
            let preds = colper_models::predict(model, t, &mut rng);
            acc_miou(&preds, &t.labels, 13).0
        })
        .sum::<f32>()
        / samples.len() as f32;

    let classic: Vec<(ClassicKind, f32, usize)> = vec![
        (ClassicKind::Fgsm, 0.10, 2),
        (ClassicKind::Ifgsm { steps: steps / 4 }, 0.10, steps / 4 + 1),
        (ClassicKind::Pgd { steps: steps / 2, alpha: 0.02 }, 0.10, steps / 2 + 1),
        (ClassicKind::Pgd { steps: steps / 2, alpha: 0.03 }, 0.15, steps / 2 + 1),
    ];

    let mut rows = Vec::new();
    // COLPER reference row.
    let colper_outcomes = parallel_map(&zoo.runtime, &samples, |i, t| {
        let mut rng = StdRng::seed_from_u64(97_000 + i as u64);
        let attack = AttackSession::new(AttackConfig::non_targeted(steps));
        let result = attack.run_with_rng(model, t, &mut rng);
        let (acc, miou) = acc_miou(&result.predictions, &t.labels, 13);
        (acc, miou, result.l2(), linf(&result.adversarial_colors, &t.colors), result.steps_run)
    });
    let len = colper_outcomes.len() as f32;
    rows.push(ComparisonRow {
        attack: format!("COLPER({steps})"),
        accuracy: colper_outcomes.iter().map(|o| o.0).sum::<f32>() / len,
        miou: colper_outcomes.iter().map(|o| o.1).sum::<f32>() / len,
        l2: colper_outcomes.iter().map(|o| o.2).sum::<f32>() / len,
        linf: colper_outcomes.iter().map(|o| o.3).sum::<f32>() / len,
        passes: (colper_outcomes.iter().map(|o| o.4).sum::<usize>() as f32 / len) as usize,
    });

    for (kind, eps, passes) in classic {
        let outcomes = parallel_map(&zoo.runtime, &samples, |i, t| {
            let mut rng = StdRng::seed_from_u64(98_000 + i as u64);
            let attack = ClassicAttack::new(kind, eps);
            let mask = vec![true; t.len()];
            let result = attack.run(model, t, &mask, &mut rng);
            let (acc, miou) = acc_miou(&result.predictions, &t.labels, 13);
            (acc, miou, result.l2(), linf(&result.adversarial_colors, &t.colors))
        });
        let len = outcomes.len() as f32;
        rows.push(ComparisonRow {
            attack: format!("{} ε={eps}", kind.label()),
            accuracy: outcomes.iter().map(|o| o.0).sum::<f32>() / len,
            miou: outcomes.iter().map(|o| o.1).sum::<f32>() / len,
            l2: outcomes.iter().map(|o| o.2).sum::<f32>() / len,
            linf: outcomes.iter().map(|o| o.3).sum::<f32>() / len,
            passes,
        });
    }

    ComparisonReport { clean_acc, rows, samples: samples.len() }
}

impl fmt::Display for ComparisonReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Attack comparison on PointNet++ ({} samples, clean acc {:.2}%) ==",
            self.samples,
            self.clean_acc * 100.0
        )?;
        writeln!(
            f,
            "{:<22} {:>9} {:>9} {:>7} {:>7} {:>7}",
            "attack", "acc", "aIoU", "L2", "L-inf", "passes"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<22} {:>8.2}% {:>8.2}% {:>7.2} {:>7.3} {:>7}",
                r.attack,
                r.accuracy * 100.0,
                r.miou * 100.0,
                r.l2,
                r.linf,
                r.passes
            )?;
        }
        Ok(())
    }
}
