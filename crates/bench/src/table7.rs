//! **Table 7**: L0-constrained color vs coordinate perturbation
//! (Algorithm 2), on ResGCN and PointNet++ — the experiment showing
//! color features are more vulnerable than coordinates.

use crate::{parallel_map, ModelZoo};
use colper_attack::{L0Attack, L0AttackConfig, PerturbTarget};
use colper_models::{CloudTensors, SegmentationModel};
use colper_scene::normalize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One `(model, perturbation target)` row.
#[derive(Debug, Clone)]
pub struct Table7Row {
    /// Victim model name.
    pub model: String,
    /// Color or coordinate.
    pub target: PerturbTarget,
    /// Mean accuracy over *successful* samples (as in the paper).
    pub accuracy: f32,
    /// Mean aIoU over successful samples.
    pub miou: f32,
    /// Sample success rate: fraction of samples fooled within the L0
    /// budget.
    pub ssr: f32,
    /// Samples evaluated (clean accuracy above 50%, per the paper).
    pub samples: usize,
}

/// The comparison results.
#[derive(Debug, Clone)]
pub struct Table7Report {
    /// One row per (model, target).
    pub rows: Vec<Table7Row>,
}

fn run_rows<M: SegmentationModel>(
    model: &M,
    samples: &[CloudTensors],
    target: PerturbTarget,
    steps: usize,
    runtime: &colper_runtime::Runtime,
) -> Table7Row {
    let outcomes = parallel_map(runtime, samples, |i, t| {
        let mut rng = StdRng::seed_from_u64(53_000 + i as u64);
        let mut cfg = L0AttackConfig::new(target);
        cfg.steps_per_round = (steps / 4).max(5);
        cfg.restore_per_round = (t.len() / 8).max(10);
        L0Attack::new(cfg).run(model, t, &mut rng)
    });
    let successes: Vec<_> = outcomes.iter().filter(|o| o.success).collect();
    let ssr = successes.len() as f32 / outcomes.len().max(1) as f32;
    let (accuracy, miou) = if successes.is_empty() {
        (f32::NAN, f32::NAN)
    } else {
        (
            successes.iter().map(|o| o.accuracy).sum::<f32>() / successes.len() as f32,
            successes.iter().map(|o| o.miou).sum::<f32>() / successes.len() as f32,
        )
    };
    Table7Row {
        model: model.name().to_string(),
        target,
        accuracy,
        miou,
        ssr,
        samples: outcomes.len(),
    }
}

/// Runs the Table 7 experiment.
pub fn run(zoo: &ModelZoo) -> Table7Report {
    let steps = zoo.config.attack_steps;
    let n = zoo.config.eval_samples;

    // The paper selects samples whose clean segmentation accuracy is
    // above 50%.
    let select =
        |model: &(dyn SegmentationModel + Sync), clouds: Vec<CloudTensors>| -> Vec<CloudTensors> {
            let mut rng = StdRng::seed_from_u64(0);
            clouds
                .into_iter()
                .filter(|t| {
                    let preds = colper_models::predict(model, t, &mut rng);
                    let correct = preds.iter().zip(&t.labels).filter(|(p, l)| p == l).count();
                    correct as f32 / t.len() as f32 > 0.5
                })
                .take(n)
                .collect()
        };

    let rg = zoo.prepared_indoor(normalize::resgcn_view);
    let rg_samples = select(&zoo.resgcn, rg.eval);
    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let pn_samples = select(&zoo.pointnet, pn.eval);

    let rows = vec![
        run_rows(&zoo.resgcn, &rg_samples, PerturbTarget::Color, steps, &zoo.runtime),
        run_rows(&zoo.resgcn, &rg_samples, PerturbTarget::Coordinate, steps, &zoo.runtime),
        run_rows(&zoo.pointnet, &pn_samples, PerturbTarget::Color, steps, &zoo.runtime),
        run_rows(&zoo.pointnet, &pn_samples, PerturbTarget::Coordinate, steps, &zoo.runtime),
    ];
    Table7Report { rows }
}

impl fmt::Display for Table7Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table 7: L0-constrained color vs coordinate perturbation ==")?;
        writeln!(f, "{:<28} {:>9} {:>9} {:>8} {:>8}", "setting", "acc", "aIoU", "SSR", "samples")?;
        for r in &self.rows {
            let tgt = match r.target {
                PerturbTarget::Color => "color",
                PerturbTarget::Coordinate => "coordinate",
            };
            let fmt_pct = |v: f32| {
                if v.is_nan() {
                    "N/A".to_string()
                } else {
                    format!("{:.2}%", v * 100.0)
                }
            };
            writeln!(
                f,
                "{:<28} {:>9} {:>9} {:>7.2}% {:>8}",
                format!("{} ({tgt})", r.model),
                fmt_pct(r.accuracy),
                fmt_pct(r.miou),
                r.ssr * 100.0,
                r.samples
            )?;
        }
        Ok(())
    }
}
