//! The experiment harness: regenerates every table and figure of the
//! COLPER paper against the synthetic datasets and in-process-trained
//! models.
//!
//! Each `tableN` module reproduces the corresponding paper artefact and
//! returns a displayable report; the `bin/` targets are thin wrappers
//! that run one experiment each and write `results/<name>.txt`:
//!
//! | Binary | Paper artefact |
//! |---|---|
//! | `table1` | Table 1 — non-targeted attack on S3DIS-like data, 3 models, vs matched-L2 noise baseline |
//! | `table2_6` | Tables 2 and 6 — targeted attack (6 source classes → wall) |
//! | `table3` | Table 3 — non-targeted attack on Semantic3D-like data |
//! | `table4` | Table 4 — targeted attack car → terrain/vegetation |
//! | `table7` | Table 7 — L0 color vs coordinate perturbation |
//! | `table8` | Table 8 — attack transferability |
//! | `figures` | Figures 3–5 — per-sample distributions (plus textual scene dumps for Figures 1/2/9/10) |
//! | `ablations` | Design-choice ablations (λ2, restarts, α, reparameterization) |
//! | `all_experiments` | Everything above in sequence |
//!
//! Experiments scale with [`BenchConfig::from_env`]: set `COLPER_FULL=1`
//! for larger sample counts and step budgets, `COLPER_QUICK=1` for a
//! smoke-test pass.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod attack_comparison;
pub mod defenses;
pub mod figures;
mod harness;
pub mod multiclass;
pub mod physical;
pub mod table1;
pub mod table2_6;
pub mod table3;
pub mod table4;
pub mod table7;
pub mod table8;
pub mod zoo_report;

pub use harness::{
    acc_miou, parallel_map, write_json, write_report, BenchConfig, ModelZoo, PreparedIndoor,
    PreparedOutdoor,
};
