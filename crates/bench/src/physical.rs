//! Physical-realizability experiment: does the digital attack survive
//! the print-and-rescan pipeline the paper's sticker deployment implies?
//!
//! For each degradation severity the harness measures the victim's
//! accuracy on (a) the clean cloud through the pipeline, (b) the plain
//! COLPER sample through the pipeline, and (c) an EoT-hardened COLPER
//! sample through the pipeline.

use crate::{acc_miou, parallel_map, ModelZoo};
use colper_attack::physical::{robust_colper, survival, PhysicalModel};
use colper_attack::{AttackConfig, AttackSession};
use colper_models::CloudTensors;
use colper_scene::normalize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One severity row.
#[derive(Debug, Clone)]
pub struct PhysicalRow {
    /// Severity label.
    pub condition: String,
    /// Mean clean accuracy through the pipeline.
    pub clean_acc: f32,
    /// Mean plain-attack accuracy through the pipeline (digital attack,
    /// physical replay).
    pub plain_attack_acc: f32,
    /// Mean EoT-hardened attack accuracy through the pipeline.
    pub robust_attack_acc: f32,
    /// Mean digital (no degradation) accuracy of the plain attack, for
    /// reference.
    pub digital_attack_acc: f32,
}

/// The physical-survival results.
#[derive(Debug, Clone)]
pub struct PhysicalReport {
    /// One row per degradation severity.
    pub rows: Vec<PhysicalRow>,
    /// Samples per row.
    pub samples: usize,
}

/// Runs the experiment on PointNet++.
pub fn run(zoo: &ModelZoo) -> PhysicalReport {
    let model = &zoo.pointnet;
    let steps = zoo.config.attack_steps;
    let n = zoo.config.eval_samples.clamp(2, 4);
    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let samples: Vec<CloudTensors> = pn.eval[..n.min(pn.eval.len())].to_vec();

    let severities = [
        ("ideal (8-bit, no jitter)", PhysicalModel::ideal()),
        (
            "mild (6-bit, ±10%, σ=0.01)",
            PhysicalModel { print_bits: 6, lighting_jitter: 0.10, sensor_noise: 0.01 },
        ),
        ("default (5-bit, ±15%, σ=0.02)", PhysicalModel::default()),
        (
            "harsh (4-bit, ±25%, σ=0.05)",
            PhysicalModel { print_bits: 4, lighting_jitter: 0.25, sensor_noise: 0.05 },
        ),
    ];

    let mut rows = Vec::new();
    for (label, pm) in severities {
        let outcomes = parallel_map(&zoo.runtime, &samples, |i, t| {
            let mut rng = StdRng::seed_from_u64(95_000 + i as u64);
            let mask = vec![true; t.len()];

            // Clean accuracy through the pipeline.
            let degraded_clean = pm.degrade(&t.colors, &mut rng);
            let mut tc = t.clone();
            tc.colors = degraded_clean;
            let preds = colper_models::predict(model, &tc, &mut rng);
            let (clean_acc, _) = acc_miou(&preds, &t.labels, 13);

            // Plain attack, then physical replay.
            let plain = AttackSession::new(AttackConfig::non_targeted(steps))
                .run_with_rng(model, t, &mut rng);
            let plain_report = survival(model, t, &plain.adversarial_colors, &pm, 4, &mut rng);

            // EoT-hardened attack, then physical replay.
            let robust = robust_colper(
                model,
                t,
                &mask,
                &AttackConfig::non_targeted(steps),
                &pm,
                3,
                &mut rng,
            );
            let robust_report = survival(model, t, &robust.adversarial_colors, &pm, 4, &mut rng);

            (clean_acc, plain_report, robust_report)
        });
        let len = outcomes.len() as f32;
        rows.push(PhysicalRow {
            condition: label.to_string(),
            clean_acc: outcomes.iter().map(|o| o.0).sum::<f32>() / len,
            plain_attack_acc: outcomes.iter().map(|o| o.1.physical_accuracy).sum::<f32>() / len,
            robust_attack_acc: outcomes.iter().map(|o| o.2.physical_accuracy).sum::<f32>() / len,
            digital_attack_acc: outcomes.iter().map(|o| o.1.digital_accuracy).sum::<f32>() / len,
        });
    }
    PhysicalReport { rows, samples: samples.len() }
}

impl fmt::Display for PhysicalReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Physical realizability: attack survival through print/lighting/sensor pipeline ==",
        )?;
        writeln!(f, "({} samples; victim accuracy, lower = attack survives)", self.samples)?;
        writeln!(
            f,
            "{:<30} {:>9} {:>12} {:>13} {:>14}",
            "condition", "clean", "digital adv", "physical adv", "EoT-hard adv"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<30} {:>8.2}% {:>11.2}% {:>12.2}% {:>13.2}%",
                r.condition,
                r.clean_acc * 100.0,
                r.digital_attack_acc * 100.0,
                r.plain_attack_acc * 100.0,
                r.robust_attack_acc * 100.0
            )?;
        }
        Ok(())
    }
}
