//! **Figures 3–5**: per-sample distributions of the perturbation L2 and
//! of accuracy/aIoU before and after the attack, for PointNet++ and
//! ResGCN; plus the textual stand-in for the visual examples (Figures
//! 1/2/9: per-class prediction counts before and after attacking the
//! Office 33 fixture).

use crate::table1::{attack_samples, SampleOutcome};
use crate::ModelZoo;
use colper_attack::{AttackConfig, AttackSession};
use colper_metrics::{ClassReport, ConfusionMatrix, Histogram};
use colper_scene::{normalize, IndoorClass};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::fmt::Write as _;

/// Distribution data for one model.
#[derive(Debug, Clone)]
pub struct ModelDistributions {
    /// Victim name.
    pub model: String,
    /// Per-sample outcomes the distributions are built from.
    pub samples: Vec<SampleOutcome>,
}

/// All figure artefacts.
#[derive(Debug, Clone)]
pub struct FiguresReport {
    /// Figure 3/4 subject (PointNet++).
    pub pointnet: ModelDistributions,
    /// Figure 5 subject (ResGCN).
    pub resgcn: ModelDistributions,
    /// Per-class clean/adversarial prediction counts on the Office 33
    /// fixture (textual Figure 1/2/9).
    pub office33_class_counts: Vec<(IndoorClass, usize, usize, usize)>,
    /// Attacked-point accuracy per iteration on the Office 33 fixture
    /// (the attack's convergence curve).
    pub convergence: Vec<f32>,
    /// Per-class report before the attack.
    pub clean_report: ClassReport,
    /// Per-class report after the attack.
    pub adv_report: ClassReport,
}

/// Runs the figure experiments.
pub fn run(zoo: &ModelZoo) -> FiguresReport {
    let steps = zoo.config.attack_steps;
    let n = zoo.config.eval_samples;

    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let pn_samples =
        attack_samples(&zoo.pointnet, &pn.eval[..n.min(pn.eval.len())], steps, &zoo.runtime);
    let rg = zoo.prepared_indoor(normalize::resgcn_view);
    let rg_samples =
        attack_samples(&zoo.resgcn, &rg.eval[..n.min(rg.eval.len())], steps, &zoo.runtime);

    // Office 33 scene dump.
    let office =
        colper_models::CloudTensors::from_cloud(&normalize::pointnet_view(&zoo.indoor.office33()));
    let mut rng = StdRng::seed_from_u64(777);
    let clean_preds = colper_models::predict(&zoo.pointnet, &office, &mut rng);
    let mut attack_cfg = AttackConfig::non_targeted(steps);
    attack_cfg.record_trajectory = true;
    attack_cfg.convergence_threshold = Some(0.0); // full trajectory
    let attack = AttackSession::new(attack_cfg);
    let result = attack.run_with_rng(&zoo.pointnet, &office, &mut rng);
    let office33_class_counts = IndoorClass::ALL
        .iter()
        .map(|&class| {
            let truth = office.labels.iter().filter(|&&l| l == class.label()).count();
            let clean = clean_preds.iter().filter(|&&p| p == class.label()).count();
            let adv = result.predictions.iter().filter(|&&p| p == class.label()).count();
            (class, truth, clean, adv)
        })
        .collect();

    let class_names: Vec<&str> = IndoorClass::ALL.iter().map(|c| c.name()).collect();
    let mut clean_cm = ConfusionMatrix::new(13);
    clean_cm.update(&clean_preds, &office.labels);
    let mut adv_cm = ConfusionMatrix::new(13);
    adv_cm.update(&result.predictions, &office.labels);

    FiguresReport {
        pointnet: ModelDistributions { model: "pointnet++".into(), samples: pn_samples },
        resgcn: ModelDistributions { model: "resgcn".into(), samples: rg_samples },
        office33_class_counts,
        convergence: result.metric_history,
        clean_report: ClassReport::from_confusion(&clean_cm, Some(&class_names)),
        adv_report: ClassReport::from_confusion(&adv_cm, Some(&class_names)),
    }
}

fn render_distributions(out: &mut String, d: &ModelDistributions) {
    let l2s: Vec<f32> = d.samples.iter().map(|s| s.l2).collect();
    let max_l2 = l2s.iter().copied().fold(1.0f32, f32::max);
    let mut l2_hist = Histogram::new(0.0, max_l2 * 1.05, 8);
    l2_hist.add_all(&l2s);

    let mut acc_clean = Histogram::new(0.0, 1.0, 10);
    acc_clean.add_all(&d.samples.iter().map(|s| s.clean_acc).collect::<Vec<_>>());
    let mut acc_adv = Histogram::new(0.0, 1.0, 10);
    acc_adv.add_all(&d.samples.iter().map(|s| s.adv_acc).collect::<Vec<_>>());
    let mut iou_clean = Histogram::new(0.0, 1.0, 10);
    iou_clean.add_all(&d.samples.iter().map(|s| s.clean_miou).collect::<Vec<_>>());
    let mut iou_adv = Histogram::new(0.0, 1.0, 10);
    iou_adv.add_all(&d.samples.iter().map(|s| s.adv_miou).collect::<Vec<_>>());

    let _ = writeln!(out, "--- {}: L2 distance distribution (Figure 3) ---", d.model);
    let _ = writeln!(out, "{l2_hist}");
    let _ = writeln!(out, "--- {}: accuracy distribution, clean (Figures 4/5) ---", d.model);
    let _ = writeln!(out, "{acc_clean}");
    let _ = writeln!(out, "--- {}: accuracy distribution, adversarial ---", d.model);
    let _ = writeln!(out, "{acc_adv}");
    let _ = writeln!(out, "--- {}: aIoU distribution, clean ---", d.model);
    let _ = writeln!(out, "{iou_clean}");
    let _ = writeln!(out, "--- {}: aIoU distribution, adversarial ---", d.model);
    let _ = writeln!(out, "{iou_adv}");
}

impl fmt::Display for FiguresReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        let _ = writeln!(out, "== Figures 3-5: per-sample distributions ==\n");
        render_distributions(&mut out, &self.pointnet);
        render_distributions(&mut out, &self.resgcn);
        let _ =
            writeln!(out, "== Figures 1/2/9 (textual): Office 33 per-class prediction counts ==");
        let _ =
            writeln!(out, "{:<12} {:>8} {:>12} {:>12}", "class", "truth", "clean pred", "adv pred");
        for (class, truth, clean, adv) in &self.office33_class_counts {
            let _ = writeln!(out, "{:<12} {:>8} {:>12} {:>12}", class.name(), truth, clean, adv);
        }
        let _ =
            writeln!(out, "\n== Convergence: attacked-point accuracy per iteration (Office 33) ==");
        let stride = (self.convergence.len() / 20).max(1);
        for (i, acc) in self.convergence.iter().enumerate().step_by(stride) {
            let bar = "#".repeat((acc * 50.0) as usize);
            let _ = writeln!(out, "iter {i:>4} | {bar:<50} | {:.1}%", acc * 100.0);
        }
        let _ = writeln!(out, "\n== Per-class report, clean (Office 33) ==");
        let _ = writeln!(out, "{}", self.clean_report);
        let _ = writeln!(out, "== Per-class report, adversarial (Office 33) ==");
        let _ = writeln!(out, "{}", self.adv_report);
        f.write_str(&out)
    }
}
