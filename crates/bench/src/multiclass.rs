//! Targeted attack against **multiple source classes at once** — the
//! supplementary experiment (Figure 10 of the paper): table, chair and
//! bookcase are all driven to `wall` in a single optimization.

use crate::{parallel_map, ModelZoo};
use colper_attack::{AttackConfig, AttackSession};
use colper_metrics::{oob_metrics, success_rate};
use colper_models::CloudTensors;
use colper_scene::{normalize, IndoorClass};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One multi-source run's aggregate outcome.
#[derive(Debug, Clone)]
pub struct MulticlassReport {
    /// The classes perturbed simultaneously.
    pub sources: Vec<IndoorClass>,
    /// The shared target class.
    pub target: IndoorClass,
    /// Mean perturbation L2.
    pub l2: f32,
    /// Point-weighted overall SR.
    pub sr: f32,
    /// Per-source-class SR.
    pub per_class_sr: Vec<(IndoorClass, f32)>,
    /// Mean out-of-band accuracy.
    pub oob_acc: f32,
    /// Mean overall accuracy.
    pub acc: f32,
    /// Samples used.
    pub samples: usize,
}

/// Runs the multi-source targeted experiment on PointNet++ (the model
/// the paper's Figure 10 uses).
pub fn run(zoo: &ModelZoo) -> MulticlassReport {
    let sources = vec![IndoorClass::Table, IndoorClass::Chair, IndoorClass::Bookcase];
    let target = IndoorClass::Wall;
    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let usable: Vec<&CloudTensors> = pn
        .office33
        .iter()
        .filter(|t| {
            sources.iter().all(|s| t.labels.iter().filter(|&&l| l == s.label()).count() >= 5)
        })
        .collect();
    let model = &zoo.pointnet;

    let outcomes = parallel_map(&zoo.runtime, &usable, |i, t| {
        let mut rng = StdRng::seed_from_u64(91_000 + i as u64);
        let mask: Vec<bool> =
            t.labels.iter().map(|&l| sources.iter().any(|s| s.label() == l)).collect();
        let mut attack_cfg = AttackConfig::targeted(zoo.config.attack_steps, target.label());
        if attack_cfg.steps < 1000 {
            // Compensate reduced step budgets, as in the Table 2/6 cells.
            attack_cfg.lr = 0.05;
        }
        let multi_source = |t: &CloudTensors| -> Vec<bool> {
            t.labels.iter().map(|&l| sources.iter().any(|s| s.label() == l)).collect()
        };
        let attack = AttackSession::new(attack_cfg).mask_with(&multi_source);
        let result = attack.run_with_rng(model, t, &mut rng);
        let targets = vec![target.label(); t.len()];
        let overall_sr = success_rate(&result.predictions, &targets, &mask);
        let per_class: Vec<(IndoorClass, f32, usize)> = sources
            .iter()
            .map(|&s| {
                let class_mask: Vec<bool> = t.labels.iter().map(|&l| l == s.label()).collect();
                let count = class_mask.iter().filter(|&&m| m).count();
                (s, success_rate(&result.predictions, &targets, &class_mask), count)
            })
            .collect();
        let stats = oob_metrics(&result.predictions, &t.labels, &mask, 13);
        let attacked = mask.iter().filter(|&&m| m).count();
        (result.l2(), overall_sr, attacked, per_class, stats)
    });

    let samples = outcomes.len();
    let total_points: usize = outcomes.iter().map(|o| o.2).sum();
    let sr = outcomes.iter().map(|o| o.1 * o.2 as f32).sum::<f32>() / total_points.max(1) as f32;
    let per_class_sr = sources
        .iter()
        .map(|&s| {
            let mut weighted = 0.0f32;
            let mut count = 0usize;
            for o in &outcomes {
                for (class, class_sr, n) in &o.3 {
                    if *class == s {
                        weighted += class_sr * *n as f32;
                        count += n;
                    }
                }
            }
            (s, weighted / count.max(1) as f32)
        })
        .collect();
    let n = samples.max(1) as f32;
    MulticlassReport {
        sources,
        target,
        l2: outcomes.iter().map(|o| o.0).sum::<f32>() / n,
        sr,
        per_class_sr,
        oob_acc: outcomes.iter().map(|o| o.4.oob_accuracy).sum::<f32>() / n,
        acc: outcomes.iter().map(|o| o.4.accuracy).sum::<f32>() / n,
        samples,
    }
}

impl fmt::Display for MulticlassReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sources: Vec<&str> = self.sources.iter().map(|s| s.name()).collect();
        writeln!(
            f,
            "== Multi-source targeted attack (Figure 10): {{{}}} -> {} ==",
            sources.join(", "),
            self.target
        )?;
        writeln!(f, "samples: {}, mean L2: {:.2}", self.samples, self.l2)?;
        writeln!(f, "overall SR: {:.2}%", self.sr * 100.0)?;
        for (class, sr) in &self.per_class_sr {
            writeln!(f, "  {:<10} SR {:.2}%", class.name(), sr * 100.0)?;
        }
        writeln!(
            f,
            "out-of-band accuracy {:.2}% (overall {:.2}%)",
            self.oob_acc * 100.0,
            self.acc * 100.0
        )
    }
}
