//! **Table 1**: non-targeted COLPER on S3DIS-like data against all three
//! models, compared to a random-noise baseline matched on L2.

use crate::{acc_miou, parallel_map, BenchConfig, ModelZoo};
use colper_attack::{AttackConfig, AttackSession, NoiseBaseline};
use colper_metrics::Summary;
use colper_models::{CloudTensors, SegmentationModel};
use colper_runtime::Runtime;
use colper_scene::normalize;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Per-sample outcome, kept for the distribution figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleOutcome {
    /// COLPER perturbation L2.
    pub l2: f32,
    /// Clean accuracy / aIoU.
    pub clean_acc: f32,
    /// Clean aIoU.
    pub clean_miou: f32,
    /// Post-COLPER accuracy.
    pub adv_acc: f32,
    /// Post-COLPER aIoU.
    pub adv_miou: f32,
    /// Matched-noise baseline accuracy.
    pub base_acc: f32,
    /// Matched-noise baseline aIoU.
    pub base_miou: f32,
}

/// One model's row block of the table.
#[derive(Debug, Clone)]
pub struct ModelRows {
    /// Display name of the victim.
    pub model: String,
    /// Mean clean accuracy across samples.
    pub clean_acc: f32,
    /// Mean clean aIoU across samples.
    pub clean_miou: f32,
    /// Per-sample outcomes.
    pub samples: Vec<SampleOutcome>,
}

impl ModelRows {
    /// Summary of COLPER post-attack accuracy across samples.
    pub fn adv_acc(&self) -> Summary {
        Summary::of(&self.samples.iter().map(|s| s.adv_acc).collect::<Vec<_>>())
    }

    /// Summary of perturbation L2 across samples.
    pub fn l2(&self) -> Summary {
        Summary::of(&self.samples.iter().map(|s| s.l2).collect::<Vec<_>>())
    }
}

/// The whole table.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// One block per victim model.
    pub rows: Vec<ModelRows>,
}

/// Attacks every sample of one model (parallel across samples) and
/// reports per-sample outcomes.
pub fn attack_samples<M: SegmentationModel>(
    model: &M,
    samples: &[CloudTensors],
    steps: usize,
    runtime: &Runtime,
) -> Vec<SampleOutcome> {
    let classes = model.num_classes();
    parallel_map(runtime, samples, |i, t| {
        let mut rng = StdRng::seed_from_u64(9000 + i as u64);
        let clean_preds = colper_models::predict(model, t, &mut rng);
        let (clean_acc, clean_miou) = acc_miou(&clean_preds, &t.labels, classes);

        let attack = AttackSession::new(AttackConfig::non_targeted(steps));
        let mask = vec![true; t.len()];
        let result = attack.run_with_rng(model, t, &mut rng);
        let (adv_acc, adv_miou) = acc_miou(&result.predictions, &t.labels, classes);

        let baseline = NoiseBaseline::new(result.l2_sq).run(model, t, &mask, &mut rng);
        let (base_acc, base_miou) = acc_miou(&baseline.predictions, &t.labels, classes);

        SampleOutcome {
            l2: result.l2(),
            clean_acc,
            clean_miou,
            adv_acc,
            adv_miou,
            base_acc,
            base_miou,
        }
    })
}

/// Runs the full Table 1 experiment.
pub fn run(zoo: &ModelZoo) -> Table1Report {
    let cfg: &BenchConfig = &zoo.config;
    let n = cfg.eval_samples;
    let mut rows = Vec::new();

    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    rows.push(model_rows(&zoo.pointnet, &pn.eval[..n.min(pn.eval.len())], cfg, &zoo.runtime));
    let rg = zoo.prepared_indoor(normalize::resgcn_view);
    rows.push(model_rows(&zoo.resgcn, &rg.eval[..n.min(rg.eval.len())], cfg, &zoo.runtime));
    let rl = zoo.prepared_indoor(randla_indoor_view);
    rows.push(model_rows(&zoo.randla_indoor, &rl.eval[..n.min(rl.eval.len())], cfg, &zoo.runtime));

    Table1Report { rows }
}

fn randla_indoor_view(c: &colper_scene::PointCloud) -> colper_scene::PointCloud {
    // Deterministic RandLA-style re-sampling per cloud.
    let mut rng = StdRng::seed_from_u64(c.len() as u64 ^ 0x0AD1A);
    normalize::randla_view(c, c.len(), &mut rng)
}

fn model_rows<M: SegmentationModel>(
    model: &M,
    samples: &[CloudTensors],
    cfg: &BenchConfig,
    runtime: &Runtime,
) -> ModelRows {
    let outcomes = attack_samples(model, samples, cfg.attack_steps, runtime);
    let clean_acc = outcomes.iter().map(|s| s.clean_acc).sum::<f32>() / outcomes.len() as f32;
    let clean_miou = outcomes.iter().map(|s| s.clean_miou).sum::<f32>() / outcomes.len() as f32;
    ModelRows { model: model.name().to_string(), clean_acc, clean_miou, samples: outcomes }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Table 1: non-targeted attack on S3DIS-like data ==")?;
        writeln!(
            f,
            "{:<12} {:<8} | {:>7} {:>8} {:>8} | {:>8} {:>8}",
            "model", "case", "L2", "acc", "aIoU", "base acc", "base IoU"
        )?;
        for row in &self.rows {
            // Order samples by post-attack accuracy: best for the
            // attacker first, as in the paper's best/average/worst rows.
            let mut by_acc = row.samples.clone();
            by_acc.sort_by(|a, b| a.adv_acc.partial_cmp(&b.adv_acc).unwrap());
            let best = by_acc.first();
            let worst = by_acc.last();
            let avg_of = |get: fn(&SampleOutcome) -> f32| {
                row.samples.iter().map(get).sum::<f32>() / row.samples.len().max(1) as f32
            };
            writeln!(
                f,
                "{:<12} clean    | {:>7} {:>7.2}% {:>7.2}% | {:>8} {:>8}",
                row.model,
                "-",
                row.clean_acc * 100.0,
                row.clean_miou * 100.0,
                "-",
                "-"
            )?;
            if let Some(b) = best {
                writeln!(
                    f,
                    "{:<12} best     | {:>7.2} {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}%",
                    row.model,
                    b.l2,
                    b.adv_acc * 100.0,
                    b.adv_miou * 100.0,
                    b.base_acc * 100.0,
                    b.base_miou * 100.0
                )?;
            }
            writeln!(
                f,
                "{:<12} average  | {:>7.2} {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}%",
                row.model,
                avg_of(|s| s.l2),
                avg_of(|s| s.adv_acc) * 100.0,
                avg_of(|s| s.adv_miou) * 100.0,
                avg_of(|s| s.base_acc) * 100.0,
                avg_of(|s| s.base_miou) * 100.0
            )?;
            if let Some(w) = worst {
                writeln!(
                    f,
                    "{:<12} worst    | {:>7.2} {:>7.2}% {:>7.2}% | {:>7.2}% {:>7.2}%",
                    row.model,
                    w.l2,
                    w.adv_acc * 100.0,
                    w.adv_miou * 100.0,
                    w.base_acc * 100.0,
                    w.base_miou * 100.0
                )?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}
