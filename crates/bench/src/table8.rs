//! **Table 8**: attack transferability — non-targeted adversarial
//! samples generated against one model, replayed against (a) the same
//! architecture trained with different parameters and (b) a different
//! model family, using the paper's Eq. 10 coordinate transform (plus the
//! range-exact variant).

use crate::{parallel_map, ModelZoo};
use colper_attack::{apply_adversarial_colors, evaluate_cloud, AttackConfig, AttackSession};
use colper_scene::{normalize, PointCloud};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One transfer setting's mean accuracy/aIoU.
#[derive(Debug, Clone)]
pub struct TransferRow {
    /// Human-readable setting description.
    pub setting: String,
    /// Mean accuracy of the receiving model on the adversarial samples.
    pub accuracy: f32,
    /// Mean aIoU.
    pub miou: f32,
}

/// The transferability results.
#[derive(Debug, Clone)]
pub struct Table8Report {
    /// One row per transfer setting.
    pub rows: Vec<TransferRow>,
    /// Samples per setting.
    pub samples: usize,
}

/// Runs the Table 8 experiment.
pub fn run(zoo: &ModelZoo) -> Table8Report {
    let n = zoo.config.eval_samples.min(zoo.indoor.rooms_per_area());
    let rooms: Vec<PointCloud> = zoo.indoor.eval_rooms().into_iter().take(n).collect();
    let steps = zoo.config.attack_steps;

    // Part 1: PointNet++ -> PointNet++ with different parameters.
    let pn_part = parallel_map(&zoo.runtime, &rooms, |i, room| {
        let mut rng = StdRng::seed_from_u64(61_000 + i as u64);
        let view = normalize::pointnet_view(room);
        let tensors = colper_models::CloudTensors::from_cloud(&view);
        let attack = AttackSession::new(AttackConfig::non_targeted(steps));
        let result = attack.run_with_rng(&zoo.pointnet, &tensors, &mut rng);
        let adv_cloud = apply_adversarial_colors(&view, &result.adversarial_colors);
        let on_source = evaluate_cloud(&zoo.pointnet, &adv_cloud, &mut rng);
        let on_alt = evaluate_cloud(&zoo.pointnet_alt, &adv_cloud, &mut rng);
        (on_source, on_alt)
    });

    // Part 2: ResGCN -> PointNet++ across model families.
    let rg_part = parallel_map(&zoo.runtime, &rooms, |i, room| {
        let mut rng = StdRng::seed_from_u64(62_000 + i as u64);
        let view = normalize::resgcn_view(room);
        let tensors = colper_models::CloudTensors::from_cloud(&view);
        let attack = AttackSession::new(AttackConfig::non_targeted(steps));
        let result = attack.run_with_rng(&zoo.resgcn, &tensors, &mut rng);
        let adv_cloud = apply_adversarial_colors(&view, &result.adversarial_colors);
        let on_source = evaluate_cloud(&zoo.resgcn, &adv_cloud, &mut rng);
        // Eq. 10 verbatim, and the range-exact variant.
        let eq10 = normalize::eq10_transform(&adv_cloud);
        let on_pn_eq10 = evaluate_cloud(&zoo.pointnet, &eq10, &mut rng);
        let exact = normalize::resgcn_to_pointnet(&adv_cloud);
        let on_pn_exact = evaluate_cloud(&zoo.pointnet, &exact, &mut rng);
        (on_source, on_pn_eq10, on_pn_exact)
    });

    let mean = |vals: Vec<(f32, f32)>| -> (f32, f32) {
        let n = vals.len().max(1) as f32;
        (vals.iter().map(|v| v.0).sum::<f32>() / n, vals.iter().map(|v| v.1).sum::<f32>() / n)
    };

    let (src_acc, src_miou) = mean(pn_part.iter().map(|(s, _)| (s.accuracy, s.miou)).collect());
    let (alt_acc, alt_miou) = mean(pn_part.iter().map(|(_, a)| (a.accuracy, a.miou)).collect());
    let (rg_acc, rg_miou) = mean(rg_part.iter().map(|(s, _, _)| (s.accuracy, s.miou)).collect());
    let (e10_acc, e10_miou) = mean(rg_part.iter().map(|(_, e, _)| (e.accuracy, e.miou)).collect());
    let (ex_acc, ex_miou) = mean(rg_part.iter().map(|(_, _, x)| (x.accuracy, x.miou)).collect());

    Table8Report {
        rows: vec![
            TransferRow {
                setting: "pointnet++ (pre-trained, source)".into(),
                accuracy: src_acc,
                miou: src_miou,
            },
            TransferRow {
                setting: "pointnet++ (self-trained)".into(),
                accuracy: alt_acc,
                miou: alt_miou,
            },
            TransferRow { setting: "resgcn (source)".into(), accuracy: rg_acc, miou: rg_miou },
            TransferRow {
                setting: "resgcn -> pointnet++ (eq. 10)".into(),
                accuracy: e10_acc,
                miou: e10_miou,
            },
            TransferRow {
                setting: "resgcn -> pointnet++ (range-exact)".into(),
                accuracy: ex_acc,
                miou: ex_miou,
            },
        ],
        samples: rooms.len(),
    }
}

impl fmt::Display for Table8Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "== Table 8: attack transferability ({} samples per setting) ==",
            self.samples
        )?;
        writeln!(f, "{:<38} {:>9} {:>9}", "setting", "acc", "aIoU")?;
        for r in &self.rows {
            writeln!(f, "{:<38} {:>8.2}% {:>8.2}%", r.setting, r.accuracy * 100.0, r.miou * 100.0)?;
        }
        Ok(())
    }
}
