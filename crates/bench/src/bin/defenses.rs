//! Regenerates the defenses experiment. See `colper_bench::defenses`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo...");
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::defenses::run(&zoo);
    colper_bench::write_report("defenses", &report.to_string());
}
