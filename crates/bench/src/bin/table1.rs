//! Regenerates the paper's table1 artefact. See `colper_bench::table1`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo ({:?} scale)...", config.points);
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::table1::run(&zoo);
    colper_bench::write_report("table1", &report.to_string());
}
