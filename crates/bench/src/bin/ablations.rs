//! Regenerates the paper's ablations artefact. See `colper_bench::ablations`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo ({:?} scale)...", config.points);
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::ablations::run(&zoo);
    colper_bench::write_report("ablations", &report.to_string());
}
