//! Runs every table and figure experiment in sequence.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo...");
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    colper_bench::write_report("table1", &colper_bench::table1::run(&zoo).to_string());
    colper_bench::write_report("table2_6", &colper_bench::table2_6::run(&zoo).to_string());
    colper_bench::write_report("table3", &colper_bench::table3::run(&zoo).to_string());
    colper_bench::write_report("table4", &colper_bench::table4::run(&zoo).to_string());
    colper_bench::write_report("table7", &colper_bench::table7::run(&zoo).to_string());
    colper_bench::write_report("table8", &colper_bench::table8::run(&zoo).to_string());
    colper_bench::write_report("figures", &colper_bench::figures::run(&zoo).to_string());
    colper_bench::write_report("ablations", &colper_bench::ablations::run(&zoo).to_string());
    colper_bench::write_report("multiclass", &colper_bench::multiclass::run(&zoo).to_string());
    colper_bench::write_report("defenses", &colper_bench::defenses::run(&zoo).to_string());
    colper_bench::write_report("physical", &colper_bench::physical::run(&zoo).to_string());
    colper_bench::write_report(
        "attack_comparison",
        &colper_bench::attack_comparison::run(&zoo).to_string(),
    );
}
