//! Regenerates the multiclass experiment. See `colper_bench::multiclass`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo...");
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::multiclass::run(&zoo);
    colper_bench::write_report("multiclass", &report.to_string());
}
