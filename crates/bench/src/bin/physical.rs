//! Regenerates the physical-realizability experiment. See
//! `colper_bench::physical`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo...");
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::physical::run(&zoo);
    colper_bench::write_report("physical", &report.to_string());
}
