//! Regenerates the COLPER-vs-classic-attacks comparison. See
//! `colper_bench::attack_comparison`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo...");
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::attack_comparison::run(&zoo);
    colper_bench::write_report("attack_comparison", &report.to_string());
}
