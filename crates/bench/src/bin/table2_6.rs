//! Regenerates the paper's Tables 2 and 6. See `colper_bench::table2_6`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo ({:?} scale)...", config.points);
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::table2_6::run(&zoo);
    colper_bench::write_report("table2_6", &report.to_string());
}
