//! Regenerates the paper's table3 artefact. See `colper_bench::table3`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo ({:?} scale)...", config.points);
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::table3::run(&zoo);
    colper_bench::write_report("table3", &report.to_string());
}
