//! Regenerates the paper's figures artefact. See `colper_bench::figures`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo ({:?} scale)...", config.points);
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::figures::run(&zoo);
    colper_bench::write_report("figures", &report.to_string());
}
