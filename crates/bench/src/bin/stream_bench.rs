//! Out-of-core streaming-attack benchmark: shards a tiled world to
//! disk, slides the bounded-memory [`StreamingAttack`] over it, and
//! emits `results/BENCH_stream.json` with throughput (points/sec),
//! peak resident bytes against the hard budget, and the warm-seat hit
//! rate. Asserting `peak <= budget` here makes the bench double as the
//! CI gate for the residency contract.
//!
//! Scales:
//!
//! * `--quick` — CI smoke: a 4-tile world under a 2-tile budget.
//! * default  — a 16-tile world, every point attacked.
//! * `--full` — the paper-scale acceptance run: a 10^8-point world
//!   (1024 tiles x ~97k points, ~2.4 GiB of shards) attacked under a
//!   budget of 8 resident tiles (~20 MiB, 0.8% of the world), with
//!   windows-per-tile sampling so the attack finishes on small hosts.
//!
//! `--keep DIR` shards the world under `DIR` and leaves it there, so a
//! repeated `--full` run skips the (dominant) generation cost.

use colper_attack::{AttackConfig, StreamConfig, StreamingAttack};
use colper_bench::write_json;
use colper_models::{PointNet2, PointNet2Config};
use colper_runtime::Runtime;
use colper_scene::tiled::{ShardStore, TiledWorld, TiledWorldConfig};
use colper_scene::OUTDOOR_CLASS_COUNT;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::time::Instant;

struct Scale {
    name: &'static str,
    tiles: u32,
    points_per_tile: usize,
    steps: usize,
    window: usize,
    windows_per_tile: Option<usize>,
    budget_tiles: usize,
}

const QUICK: Scale = Scale {
    name: "quick",
    tiles: 2,
    points_per_tile: 256,
    steps: 2,
    window: 128,
    windows_per_tile: None,
    budget_tiles: 2,
};

const DEFAULT: Scale = Scale {
    name: "default",
    tiles: 4,
    points_per_tile: 2048,
    steps: 4,
    window: 512,
    windows_per_tile: None,
    budget_tiles: 2,
};

/// 32 x 32 tiles x 97_657 points = 100_000_768 points.
const FULL: Scale = Scale {
    name: "full",
    tiles: 32,
    points_per_tile: 97_657,
    steps: 2,
    window: 512,
    windows_per_tile: Some(1),
    budget_tiles: 8,
};

fn host_parallelism() -> usize {
    std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1)
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale = if args.iter().any(|a| a == "--full") {
        FULL
    } else if args.iter().any(|a| a == "--quick") {
        QUICK
    } else {
        DEFAULT
    };
    let threads = arg_value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(1);
    let seed: u64 = arg_value(&args, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let keep_dir = arg_value(&args, "--keep").map(PathBuf::from);
    let dir = keep_dir.clone().unwrap_or_else(|| {
        std::env::temp_dir().join(format!("colper-stream-bench-{}", std::process::id()))
    });

    let mut world_cfg = TiledWorldConfig::grid(scale.tiles, scale.points_per_tile);
    world_cfg.world_seed = seed;
    let tile_bytes = world_cfg.tile_bytes();
    let total_points = world_cfg.total_points();
    let shard_bytes = scale.tiles as usize * scale.tiles as usize * tile_bytes;
    let budget_bytes = scale.budget_tiles * tile_bytes;
    println!(
        "bench stream/{}: {}x{} tiles x {} points = {} points ({:.1} MiB of shards), \
         budget {} tiles ({:.1} MiB, {:.2}% of world)",
        scale.name,
        scale.tiles,
        scale.tiles,
        scale.points_per_tile,
        total_points,
        shard_bytes as f64 / (1 << 20) as f64,
        scale.budget_tiles,
        budget_bytes as f64 / (1 << 20) as f64,
        budget_bytes as f64 / shard_bytes as f64 * 100.0,
    );

    let runtime = Runtime::new(threads);
    let gen_started = Instant::now();
    let world = runtime.install(|| {
        if dir.join("world.meta").exists() {
            let world = TiledWorld::open(&dir).expect("reopen sharded world");
            assert_eq!(world.config(), &world_cfg, "--keep dir holds a different world");
            println!("bench stream: reusing shards at {}", dir.display());
            world
        } else {
            std::fs::remove_dir_all(&dir).ok();
            TiledWorld::create(&dir, &world_cfg).expect("shard world")
        }
    });
    let generate_seconds = gen_started.elapsed().as_secs_f64();
    println!(
        "bench stream: world sharded in {generate_seconds:.1}s \
         ({:.0} points/sec generated)",
        total_points as f64 / generate_seconds.max(1e-9)
    );

    let mut cfg = StreamConfig::new(AttackConfig::non_targeted(scale.steps));
    cfg.window_core = scale.window;
    cfg.windows_per_tile = scale.windows_per_tile;
    cfg.seed = seed;
    let halo_margin = cfg.halo_margin;
    let halo_budget = cfg.halo_budget;
    let mut store = ShardStore::new(world, budget_bytes);
    let model =
        PointNet2::new(PointNet2Config::tiny(OUTDOOR_CLASS_COUNT), &mut StdRng::seed_from_u64(0));

    let attack_started = Instant::now();
    let outcome = StreamingAttack::new(cfg)
        .runtime(&runtime)
        .run(&model, &mut store)
        .expect("streaming attack");
    let attack_seconds = attack_started.elapsed().as_secs_f64();
    drop(store);
    if keep_dir.is_none() {
        std::fs::remove_dir_all(&dir).ok();
    }

    let attacked_per_sec = outcome.points_attacked as f64 / attack_seconds.max(1e-9);
    println!(
        "bench stream: attacked {} points in {} windows over {} tiles in {attack_seconds:.1}s \
         ({attacked_per_sec:.0} points/sec)",
        outcome.points_attacked, outcome.windows, outcome.tiles
    );
    println!(
        "bench stream: peak resident {:.2} MiB of {:.2} MiB budget ({} evictions, {} misses); \
         warm-seat hit rate {:.1}%",
        outcome.residency.peak_bytes as f64 / (1 << 20) as f64,
        outcome.residency.budget_bytes as f64 / (1 << 20) as f64,
        outcome.residency.evictions,
        outcome.residency.misses,
        outcome.warm_hit_rate() * 100.0
    );
    println!(
        "bench stream: clean accuracy {:.3}, adversarial accuracy {:.3}, attack success {:.3}",
        outcome.clean.accuracy(),
        outcome.adversarial.accuracy(),
        outcome.attack_success()
    );
    assert!(
        outcome.residency.peak_bytes <= budget_bytes,
        "peak resident bytes {} exceeded the hard budget {budget_bytes}",
        outcome.residency.peak_bytes
    );
    assert!(outcome.points_attacked > 0, "the stream attacked nothing");

    let json = format!(
        "{{\n  \"benchmark\": \"stream_attack\",\n  \"scale\": \"{name}\",\n  \
         \"model\": \"pointnet2_tiny\",\n  \"threads\": {threads},\n  \
         \"host_parallelism\": {host},\n  \
         \"world\": {{\n    \"tiles\": {tiles},\n    \
         \"points_per_tile\": {ppt},\n    \"total_points\": {total_points},\n    \
         \"shard_bytes\": {shard_bytes},\n    \"seed\": {seed}\n  }},\n  \
         \"config\": {{\n    \"steps\": {steps},\n    \"window_core\": {window},\n    \
         \"windows_per_tile\": {wpt},\n    \"halo_margin\": {halo_margin},\n    \
         \"halo_budget\": {halo_budget}\n  }},\n  \
         \"residency\": {{\n    \"budget_bytes\": {budget_bytes},\n    \
         \"peak_bytes\": {peak},\n    \"evictions\": {evictions},\n    \
         \"hits\": {hits},\n    \"misses\": {misses}\n  }},\n  \
         \"throughput\": {{\n    \"generate_seconds\": {generate_seconds:.3},\n    \
         \"attack_seconds\": {attack_seconds:.3},\n    \
         \"points_attacked\": {attacked},\n    \
         \"attacked_points_per_sec\": {attacked_per_sec:.1},\n    \
         \"windows\": {windows},\n    \"halo_points\": {halo_points}\n  }},\n  \
         \"seats\": {{\n    \"runs\": {seat_runs},\n    \
         \"warm_starts\": {warm_starts},\n    \"warm_hit_rate\": {hit_rate:.4}\n  }},\n  \
         \"attack\": {{\n    \"clean_accuracy\": {clean_acc:.6},\n    \
         \"clean_miou\": {clean_miou:.6},\n    \
         \"adversarial_accuracy\": {adv_acc:.6},\n    \
         \"adversarial_miou\": {adv_miou:.6},\n    \
         \"attack_success\": {success:.6},\n    \"l2_sq\": {l2:.6}\n  }}\n}}\n",
        name = scale.name,
        host = host_parallelism(),
        tiles = scale.tiles,
        ppt = scale.points_per_tile,
        steps = scale.steps,
        window = scale.window,
        wpt = scale.windows_per_tile.map_or("null".to_string(), |n| n.to_string()),
        peak = outcome.residency.peak_bytes,
        evictions = outcome.residency.evictions,
        hits = outcome.residency.hits,
        misses = outcome.residency.misses,
        attacked = outcome.points_attacked,
        windows = outcome.windows,
        halo_points = outcome.halo_points,
        seat_runs = outcome.seat_runs,
        warm_starts = outcome.warm_starts,
        hit_rate = outcome.warm_hit_rate(),
        clean_acc = outcome.clean.accuracy(),
        clean_miou = outcome.clean.mean_iou(),
        adv_acc = outcome.adversarial.accuracy(),
        adv_miou = outcome.adversarial.mean_iou(),
        success = outcome.attack_success(),
        l2 = outcome.total_l2_sq,
    );
    write_json("BENCH_stream", &json);
}
