//! Prints the clean evaluation of every victim model (the paper's
//! "Target Models" numbers). See `colper_bench::zoo_report`.

fn main() {
    let config = colper_bench::BenchConfig::from_env();
    eprintln!("building model zoo...");
    let zoo = colper_bench::ModelZoo::load_or_train(&config);
    let report = colper_bench::zoo_report::run(&zoo);
    colper_bench::write_report("zoo_report", &report.to_string());
}
