//! **Tables 2 and 6**: targeted attack on the six indoor source classes
//! (window, door, table, chair, bookcase, board), all driven toward
//! `wall`, against all three models. Table 2 is the board/table subset
//! of Table 6; this module regenerates the full Table 6.

use crate::{parallel_map, BenchConfig, ModelZoo};
use colper_attack::{AttackConfig, AttackSession};
use colper_metrics::{oob_metrics, success_rate};
use colper_models::{CloudTensors, SegmentationModel};
use colper_scene::{normalize, IndoorClass};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Minimum source-class points for a sample to enter a cell (the paper
/// filters out samples where the class is too small).
const MIN_CLASS_POINTS: usize = 10;

/// One `(model, source class)` cell.
#[derive(Debug, Clone)]
pub struct TargetedCell {
    /// Victim model name.
    pub model: String,
    /// Source class being driven to `wall`.
    pub source: IndoorClass,
    /// Mean perturbation L2 across samples.
    pub l2: f32,
    /// Total attacked points across samples.
    pub points: usize,
    /// Point-weighted success rate.
    pub sr: f32,
    /// Mean out-of-band accuracy.
    pub oob_acc: f32,
    /// Mean overall accuracy.
    pub acc: f32,
    /// Mean out-of-band aIoU.
    pub oob_miou: f32,
    /// Mean overall aIoU.
    pub miou: f32,
    /// Samples that actually contained the class.
    pub samples_used: usize,
}

/// The full table.
#[derive(Debug, Clone)]
pub struct Table6Report {
    /// One cell per (model, source class).
    pub cells: Vec<TargetedCell>,
}

/// Attacks one model's office blocks for one source class.
pub fn targeted_cell<M: SegmentationModel>(
    model: &M,
    samples: &[CloudTensors],
    source: IndoorClass,
    target: IndoorClass,
    cfg: &BenchConfig,
    runtime: &colper_runtime::Runtime,
) -> Option<TargetedCell> {
    let classes = model.num_classes();
    let usable: Vec<&CloudTensors> = samples
        .iter()
        .filter(|t| t.labels.iter().filter(|&&l| l == source.label()).count() >= MIN_CLASS_POINTS)
        .collect();
    if usable.is_empty() {
        return None;
    }
    let outcomes = parallel_map(runtime, &usable, |i, t| {
        let mut rng = StdRng::seed_from_u64(17_000 + i as u64);
        let mask: Vec<bool> = t.labels.iter().map(|&l| l == source.label()).collect();
        // Compensate reduced step budgets (the paper runs 1000) with a
        // larger step size so hard source classes get a fair shot.
        let mut attack_cfg = AttackConfig::targeted(cfg.attack_steps, target.label());
        if attack_cfg.steps < 1000 {
            attack_cfg.lr = 0.05;
        }
        let attack = AttackSession::new(attack_cfg).mask_source_class(source.label());
        let result = attack.run_with_rng(model, t, &mut rng);
        let targets = vec![target.label(); t.len()];
        let sr_points = (
            success_rate(&result.predictions, &targets, &mask),
            mask.iter().filter(|&&m| m).count(),
        );
        let stats = oob_metrics(&result.predictions, &t.labels, &mask, classes);
        (result.l2(), sr_points, stats)
    });
    let samples_used = outcomes.len();
    let total_points: usize = outcomes.iter().map(|(_, (_, p), _)| *p).sum();
    let sr = outcomes.iter().map(|(_, (sr, p), _)| sr * *p as f32).sum::<f32>()
        / total_points.max(1) as f32;
    type Outcome = (f32, (f32, usize), colper_metrics::AttackPointStats);
    let mean =
        |get: &dyn Fn(&Outcome) -> f32| outcomes.iter().map(get).sum::<f32>() / samples_used as f32;
    Some(TargetedCell {
        model: model.name().to_string(),
        source,
        l2: mean(&|o| o.0),
        points: total_points,
        sr,
        oob_acc: mean(&|o| o.2.oob_accuracy),
        acc: mean(&|o| o.2.accuracy),
        oob_miou: mean(&|o| o.2.oob_miou),
        miou: mean(&|o| o.2.miou),
        samples_used,
    })
}

/// Runs the full Tables 2/6 experiment (all models x all six source
/// classes, target = wall).
pub fn run(zoo: &ModelZoo) -> Table6Report {
    let cfg = &zoo.config;
    let target = IndoorClass::Wall;
    let mut cells = Vec::new();

    let pn = zoo.prepared_indoor(normalize::pointnet_view);
    let rg = zoo.prepared_indoor(normalize::resgcn_view);
    let rl = zoo.prepared_indoor(|c| {
        let mut rng = StdRng::seed_from_u64(c.len() as u64 ^ 0x0AD1A);
        normalize::randla_view(c, c.len(), &mut rng)
    });

    for source in IndoorClass::targeted_attack_sources() {
        let rt = &zoo.runtime;
        if let Some(cell) = targeted_cell(&zoo.pointnet, &pn.office33, source, target, cfg, rt) {
            cells.push(cell);
        }
        if let Some(cell) = targeted_cell(&zoo.resgcn, &rg.office33, source, target, cfg, rt) {
            cells.push(cell);
        }
        if let Some(cell) = targeted_cell(&zoo.randla_indoor, &rl.office33, source, target, cfg, rt)
        {
            cells.push(cell);
        }
    }
    Table6Report { cells }
}

impl fmt::Display for Table6Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Tables 2/6: targeted attack, six source classes -> wall ==")?;
        writeln!(
            f,
            "{:<24} {:>7} {:>8} {:>8} {:>17} {:>17}",
            "setting", "L2", "points", "SR", "OOB acc / acc", "OOB IoU / IoU"
        )?;
        for c in &self.cells {
            writeln!(
                f,
                "{:<24} {:>7.2} {:>8} {:>7.2}% {:>7.2}%/{:>7.2}% {:>7.2}%/{:>7.2}%",
                format!("{}({})", c.model, c.source),
                c.l2,
                c.points,
                c.sr * 100.0,
                c.oob_acc * 100.0,
                c.acc * 100.0,
                c.oob_miou * 100.0,
                c.miou * 100.0
            )?;
        }
        Ok(())
    }
}
