//! Defense evaluation — the paper's "Defenses" section turned into an
//! experiment: each candidate defense is scored on (a) clean accuracy it
//! preserves, (b) accuracy it restores under a *static* COLPER attack
//! generated against the undefended model, and (c) accuracy under an
//! *adaptive* attack run against the defended pipeline where the
//! transform is differentiable-in-effect (re-optimized on the defended
//! input). The detector is scored by detection / false-positive rate.

use crate::{acc_miou, parallel_map, ModelZoo};
use colper_attack::{apply_adversarial_colors, AttackConfig, AttackSession};
use colper_defense::{
    Defense, GaussianNoise, Grayscale, Jitter, OutlierRemoval, Quantize, RandomDrop, Smooth,
    SmoothnessDetector,
};
use colper_models::CloudTensors;
use colper_scene::{normalize, PointCloud};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// One transform-defense row.
#[derive(Debug, Clone)]
pub struct DefenseRow {
    /// Defense label.
    pub defense: String,
    /// Mean accuracy on clean (defended) inputs.
    pub clean_acc: f32,
    /// Mean accuracy on statically attacked then defended inputs.
    pub static_adv_acc: f32,
    /// Mean accuracy when the attacker optimizes against the defended
    /// input (transform applied before each attack).
    pub adaptive_adv_acc: f32,
}

/// The defense evaluation results.
#[derive(Debug, Clone)]
pub struct DefensesReport {
    /// Undefended reference: clean and attacked accuracy.
    pub undefended_clean: f32,
    /// Undefended post-attack accuracy.
    pub undefended_adv: f32,
    /// One row per transform defense.
    pub rows: Vec<DefenseRow>,
    /// Anomaly-detector true-positive rate on adversarial clouds.
    pub detector_tpr: f32,
    /// Anomaly-detector false-positive rate on clean clouds.
    pub detector_fpr: f32,
    /// Detector true-positive rate when the attacker drops the
    /// smoothness penalty (λ2 = 0).
    pub detector_tpr_no_smoothness: f32,
}

/// Runs the defense evaluation on PointNet++.
pub fn run(zoo: &ModelZoo) -> DefensesReport {
    let model = &zoo.pointnet;
    let classes = 13;
    let steps = zoo.config.attack_steps;
    let n = zoo.config.eval_samples.clamp(3, 6);
    let rooms: Vec<PointCloud> =
        zoo.indoor.eval_rooms().into_iter().take(n).map(|c| normalize::pointnet_view(&c)).collect();

    // Reference: attack the undefended model once per room; reuse the
    // adversarial clouds for the static rows and the detector.
    let attacked: Vec<(PointCloud, f32, f32)> = parallel_map(&zoo.runtime, &rooms, |i, room| {
        let mut rng = StdRng::seed_from_u64(81_000 + i as u64);
        let t = CloudTensors::from_cloud(room);
        let clean_preds = colper_models::predict(model, &t, &mut rng);
        let (clean_acc, _) = acc_miou(&clean_preds, &t.labels, classes);
        let attack = AttackSession::new(AttackConfig::non_targeted(steps));
        let result = attack.run_with_rng(model, &t, &mut rng);
        let (adv_acc, _) = acc_miou(&result.predictions, &t.labels, classes);
        (apply_adversarial_colors(room, &result.adversarial_colors), clean_acc, adv_acc)
    });
    let undefended_clean = attacked.iter().map(|a| a.1).sum::<f32>() / attacked.len() as f32;
    let undefended_adv = attacked.iter().map(|a| a.2).sum::<f32>() / attacked.len() as f32;

    let transforms: Vec<Box<dyn Defense>> = vec![
        Box::new(Quantize::new(3)),
        Box::new(Smooth::new(8)),
        Box::new(Jitter::new(0.08)),
        Box::new(Grayscale),
        Box::new(GaussianNoise::new(0.05)),
        Box::new(OutlierRemoval::new(8, 1.5)),
        Box::new(RandomDrop::new(0.25)),
    ];
    let mut rows = Vec::new();
    for transform in &transforms {
        let outcomes = parallel_map(&zoo.runtime, &rooms, |i, room| {
            let mut rng = StdRng::seed_from_u64(82_000 + i as u64);
            // Clean accuracy through the defense.
            let defended_clean = transform.apply(room, &mut rng);
            let tc = CloudTensors::from_cloud(&defended_clean);
            let preds = colper_models::predict(model, &tc, &mut rng);
            let (clean_acc, _) = acc_miou(&preds, &tc.labels, classes);

            // Static attack: defend the pre-computed adversarial cloud.
            let defended_adv = transform.apply(&attacked[i].0, &mut rng);
            let ta = CloudTensors::from_cloud(&defended_adv);
            let preds = colper_models::predict(model, &ta, &mut rng);
            let (static_acc, _) = acc_miou(&preds, &ta.labels, classes);

            // Adaptive attack: the attacker optimizes on the defended
            // input (transform folded in front of the optimization).
            let adaptive_base = transform.apply(room, &mut rng);
            let tb = CloudTensors::from_cloud(&adaptive_base);
            let attack = AttackSession::new(AttackConfig::non_targeted(steps));
            let result = attack.run_with_rng(model, &tb, &mut rng);
            // The defense re-applies its transform to whatever arrives.
            let adv_cloud = apply_adversarial_colors(&adaptive_base, &result.adversarial_colors);
            let redefended = transform.apply(&adv_cloud, &mut rng);
            let tr = CloudTensors::from_cloud(&redefended);
            let preds = colper_models::predict(model, &tr, &mut rng);
            let (adaptive_acc, _) = acc_miou(&preds, &tr.labels, classes);
            (clean_acc, static_acc, adaptive_acc)
        });
        let len = outcomes.len() as f32;
        rows.push(DefenseRow {
            defense: transform.id(),
            clean_acc: outcomes.iter().map(|o| o.0).sum::<f32>() / len,
            static_adv_acc: outcomes.iter().map(|o| o.1).sum::<f32>() / len,
            adaptive_adv_acc: outcomes.iter().map(|o| o.2).sum::<f32>() / len,
        });
    }

    // Anomaly detector: calibrate on training rooms, test on the
    // attacked clouds from above — and on attacks run *without* the
    // smoothness penalty, to quantify how much Eq. 6 buys the attacker
    // in stealth.
    let calib: Vec<PointCloud> = zoo
        .indoor
        .train_rooms()
        .into_iter()
        .take(8)
        .map(|c| normalize::pointnet_view(&c))
        .collect();
    let detector = SmoothnessDetector::calibrate(&calib, 6, 3.0);
    let adv_clouds: Vec<PointCloud> = attacked.iter().map(|a| a.0.clone()).collect();
    let report = detector.evaluate(&rooms, &adv_clouds);

    let rough_adv: Vec<PointCloud> = parallel_map(&zoo.runtime, &rooms, |i, room| {
        let mut rng = StdRng::seed_from_u64(83_000 + i as u64);
        let t = CloudTensors::from_cloud(room);
        let mut cfg = AttackConfig::non_targeted(steps);
        cfg.lambda2 = 0.0; // no smoothness: a noisier perturbation
        let result = AttackSession::new(cfg).run_with_rng(model, &t, &mut rng);
        apply_adversarial_colors(room, &result.adversarial_colors)
    });
    let rough_report = detector.evaluate(&rooms, &rough_adv);

    DefensesReport {
        undefended_clean,
        undefended_adv,
        rows,
        detector_tpr: report.detection_rate,
        detector_fpr: report.false_positive_rate,
        detector_tpr_no_smoothness: rough_report.detection_rate,
    }
}

impl fmt::Display for DefensesReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== Defense evaluation (PointNet++, paper's future-work section) ==")?;
        writeln!(
            f,
            "undefended: clean {:.2}%, after COLPER {:.2}%",
            self.undefended_clean * 100.0,
            self.undefended_adv * 100.0
        )?;
        writeln!(
            f,
            "{:<20} {:>10} {:>12} {:>13}",
            "defense", "clean", "static adv", "adaptive adv"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "{:<20} {:>9.2}% {:>11.2}% {:>12.2}%",
                r.defense,
                r.clean_acc * 100.0,
                r.static_adv_acc * 100.0,
                r.adaptive_adv_acc * 100.0
            )?;
        }
        writeln!(
            f,
            "smoothness detector: detection rate {:.1}% (false positives {:.1}%); \
             without the attack's smoothness penalty (λ2=0): {:.1}%",
            self.detector_tpr * 100.0,
            self.detector_fpr * 100.0,
            self.detector_tpr_no_smoothness * 100.0
        )
    }
}
