//! `colper-loadtest` — drives a running `colperd` with many concurrent
//! attack jobs and writes `results/BENCH_service.json`.
//!
//! ```text
//! colper-loadtest [--addr HOST:PORT] [--clients N] [--requests N]
//!                 [--points N] [--steps N] [--out FILE]
//! ```

use colper_repro::serve::{run_load, LoadConfig};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage:
  colper-loadtest [--addr HOST:PORT] [--clients N] [--requests N] [--points N] [--steps N]
                  [--out FILE]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(format!("unexpected argument '{}'", args[i]));
        };
        let value = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn flag_usize(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args)?;
    let defaults = LoadConfig::default();
    let points = flag_usize(&flags, "points", 64)?;
    let steps = flag_usize(&flags, "steps", 5)?;
    let config = LoadConfig {
        addr: flags.get("addr").cloned().unwrap_or(defaults.addr),
        clients: flag_usize(&flags, "clients", defaults.clients)?,
        requests_per_client: flag_usize(&flags, "requests", defaults.requests_per_client)?,
        body: format!(r#"{{"points":{points},"steps":{steps},"priority":"batch"}}"#),
    };
    let out = flags.get("out").map_or("results/BENCH_service.json", String::as_str);

    println!(
        "load-testing {} with {} clients x {} requests ({} points, {} steps each)...",
        config.addr, config.clients, config.requests_per_client, points, steps
    );
    let report = run_load(&config);
    println!("{}", report.summary_line());

    if let Some(dir) = std::path::Path::new(out).parent() {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");

    if report.ok == 0 {
        return Err("no job completed successfully".to_string());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
