//! `colper` — command-line front end for the COLPER reproduction.
//!
//! ```text
//! colper scene   [--outdoor] [--points N] [--seed S]
//! colper train   [--model pointnet|resgcn|randla] [--points N] [--rooms R]
//!                [--epochs E] [--out FILE] [--threads N]
//! colper attack  [--model pointnet|resgcn|randla] [--steps S] [--points N]
//!                [--targeted CLASS] [--source CLASS] [--weights FILE]
//!                [--threads N]
//! colper stream  [--tiles N] [--points-per-tile N] [--steps S] [--window N]
//!                [--budget-mb MB] [--seed S] [--dir DIR] [--threads N]
//! colper matrix  [--quick] [--points N] [--steps S] [--out FILE] [--threads N]
//! colper serve   [--addr HOST:PORT] [--workers N] [--threads N] [--queue-cap N]
//! ```
//!
//! Everything runs on synthetic scenes; `train` writes a checkpoint that
//! `attack --weights` can reuse. `stream` materializes an out-of-core
//! tiled world as memory-mapped column shards and attacks it window by
//! window under a hard residency budget. `matrix` runs the attack ×
//! defense robustness cross-product and writes the ranked report to
//! `results/BENCH_matrix.json`. `--threads` sizes the shared compute
//! pool (default: `COLPER_THREADS`, else the host parallelism); every
//! thread count produces bit-identical results.

use colper_repro::attack::{AttackConfig, AttackSession, NoiseBaseline};
use colper_repro::metrics::ConfusionMatrix;
use colper_repro::models::{
    train_model, CloudTensors, PointNet2, PointNet2Config, RandLaNet, RandLaNetConfig, ResGcn,
    ResGcnConfig, SegmentationModel, TrainConfig,
};
use colper_repro::nn::{load_params, save_params};
use colper_repro::obs::{Observer, TraceReport};
use colper_repro::runtime::Runtime;
use colper_repro::scene::{
    normalize, IndoorClass, IndoorSceneConfig, OutdoorSceneConfig, RoomKind, S3disLikeDataset,
    SceneGenerator,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((command, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match Flags::parse(rest) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // One pool serves the whole command; every library layer picks it up
    // as the ambient runtime. Results are identical for any --threads.
    let runtime = match flags.get("threads").map(|v| v.parse::<usize>()) {
        None => Runtime::from_env(),
        Some(Ok(n)) if n >= 1 => Runtime::new(n),
        Some(_) => {
            eprintln!("error: --threads expects a positive integer\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = runtime.clone().install(|| match command.as_str() {
        "scene" => cmd_scene(&flags),
        "train" => cmd_train(&flags),
        "attack" => cmd_attack(&flags),
        "stream" => cmd_stream(&flags),
        "matrix" => cmd_matrix(&flags, &runtime),
        "serve" => cmd_serve(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'")),
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  colper scene   [--outdoor] [--points N] [--seed S] [--map] [--ply FILE]
  colper train   [--model pointnet|resgcn|randla] [--points N] [--rooms R] [--epochs E] [--out FILE]
                 [--threads N]
  colper attack  [--model pointnet|resgcn|randla] [--steps S] [--points N] [--seed S]
                 [--targeted CLASS] [--source CLASS] [--weights FILE] [--map] [--ply FILE]
                 [--threads N] [--trace]
  colper stream  [--tiles N] [--points-per-tile N] [--extent M] [--steps S] [--window N]
                 [--budget-mb MB] [--windows-per-tile N] [--seed S] [--dir DIR] [--threads N]
  colper matrix  [--quick] [--points N] [--steps S] [--out FILE] [--threads N]
  colper serve   [--addr HOST:PORT] [--workers N] [--threads N] [--queue-cap N]";

/// Parsed `--flag value` / `--flag` command-line arguments with typed,
/// validated accessors — the one flag surface every subcommand shares
/// (model/points/steps/seed/threads handling used to be duplicated per
/// command as loose helper calls over a raw map).
struct Flags(HashMap<String, String>);

/// Flags that are present/absent switches rather than key-value pairs.
const BOOLEAN_FLAGS: [&str; 4] = ["outdoor", "map", "trace", "quick"];

impl Flags {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            let Some(name) = arg.strip_prefix("--") else {
                return Err(format!("unexpected argument '{arg}'"));
            };
            if BOOLEAN_FLAGS.contains(&name) {
                flags.insert(name.to_string(), "true".to_string());
                i += 1;
                continue;
            }
            let value = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
            flags.insert(name.to_string(), value.clone());
            i += 2;
        }
        Ok(Self(flags))
    }

    /// The raw value of `--name`, when given.
    fn get(&self, name: &str) -> Option<&String> {
        self.0.get(name)
    }

    /// Whether a boolean switch was given.
    fn is_set(&self, name: &str) -> bool {
        self.0.contains_key(name)
    }

    /// String flag with a default.
    fn str<'a>(&'a self, name: &str, default: &'a str) -> &'a str {
        self.0.get(name).map_or(default, String::as_str)
    }

    /// Integer flag with a default.
    fn usize(&self, name: &str, default: usize) -> Result<usize, String> {
        self.parsed(name, default)
    }

    /// Seed-sized integer flag with a default.
    fn u64(&self, name: &str, default: u64) -> Result<u64, String> {
        self.parsed(name, default)
    }

    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.0.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got '{v}'")),
        }
    }
}

fn indoor_class(name: &str) -> Result<IndoorClass, String> {
    IndoorClass::ALL.into_iter().find(|c| c.name() == name).ok_or_else(|| {
        let names: Vec<&str> = IndoorClass::ALL.iter().map(|c| c.name()).collect();
        format!("unknown class '{name}'; expected one of {}", names.join(", "))
    })
}

fn cmd_scene(flags: &Flags) -> Result<(), String> {
    let points = flags.usize("points", 1024)?;
    let seed = flags.u64("seed", 0)?;
    let outdoor = flags.is_set("outdoor");
    let cloud = if outdoor {
        SceneGenerator::outdoor(OutdoorSceneConfig::with_points(points)).generate(seed)
    } else {
        SceneGenerator::indoor(IndoorSceneConfig::with_points(points)).generate(seed)
    };
    let bounds = cloud.bounds().expect("non-empty");
    println!(
        "{} scene: {} points, {} classes, extent {:.1} x {:.1} x {:.1} m",
        if outdoor { "outdoor" } else { "indoor" },
        cloud.len(),
        cloud.num_classes,
        bounds.size().x,
        bounds.size().y,
        bounds.size().z
    );
    println!("{:<18} {:>8} {:>8}", "class", "points", "share");
    for (label, count) in cloud.class_histogram().iter().enumerate() {
        if *count == 0 {
            continue;
        }
        let name = if outdoor {
            colper_repro::scene::OutdoorClass::from_label(label).name()
        } else {
            IndoorClass::from_label(label).name()
        };
        println!("{:<18} {:>8} {:>7.2}%", name, count, *count as f32 / cloud.len() as f32 * 100.0);
    }
    if flags.is_set("map") {
        println!("\ntop-down class map:");
        print!("{}", colper_repro::scene::viz::top_down_map(&cloud, &cloud.labels, 60, 22));
        let names: Vec<&str> = if outdoor {
            colper_repro::scene::OutdoorClass::ALL.iter().map(|c| c.name()).collect()
        } else {
            IndoorClass::ALL.iter().map(|c| c.name()).collect()
        };
        println!("{}", colper_repro::scene::viz::legend(&names));
    }
    if let Some(path) = flags.get("ply") {
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        colper_repro::scene::io::write_ply(&cloud, std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("RGB point cloud written to {path}");
    }
    Ok(())
}

enum AnyModel {
    PointNet(PointNet2),
    ResGcn(ResGcn),
    RandLa(RandLaNet),
}

impl AnyModel {
    fn build(kind: &str, rng: &mut StdRng) -> Result<Self, String> {
        Ok(match kind {
            "pointnet" => AnyModel::PointNet(PointNet2::new(PointNet2Config::small(13), rng)),
            "resgcn" => AnyModel::ResGcn(ResGcn::new(ResGcnConfig::small(13), rng)),
            "randla" => AnyModel::RandLa(RandLaNet::new(RandLaNetConfig::small(13), rng)),
            other => return Err(format!("unknown model '{other}' (pointnet|resgcn|randla)")),
        })
    }

    fn as_dyn(&self) -> &dyn SegmentationModel {
        match self {
            AnyModel::PointNet(m) => m,
            AnyModel::ResGcn(m) => m,
            AnyModel::RandLa(m) => m,
        }
    }

    fn as_dyn_mut(&mut self) -> &mut dyn SegmentationModel {
        match self {
            AnyModel::PointNet(m) => m,
            AnyModel::ResGcn(m) => m,
            AnyModel::RandLa(m) => m,
        }
    }

    fn view(&self, cloud: &colper_repro::scene::PointCloud, rng: &mut StdRng) -> CloudTensors {
        let normalized = match self {
            AnyModel::PointNet(_) => normalize::pointnet_view(cloud),
            AnyModel::ResGcn(_) => normalize::resgcn_view(cloud),
            AnyModel::RandLa(_) => normalize::randla_view(cloud, cloud.len(), rng),
        };
        CloudTensors::from_cloud(&normalized)
    }
}

fn cmd_serve(flags: &Flags) -> Result<(), String> {
    use colper_repro::serve::{ServeConfig, Server};
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: flags.get("addr").cloned().unwrap_or(defaults.addr),
        workers: flags.usize("workers", defaults.workers)?,
        threads: flags.usize("threads", defaults.threads)?,
        queue_capacity: flags.usize("queue-cap", defaults.queue_capacity)?,
        seat_cap: flags.usize("seat-cap", defaults.seat_cap)?,
    };
    let server = Server::start(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    println!(
        "colperd listening on {} ({} workers, {} compute threads, queue capacity {})",
        server.local_addr(),
        config.workers,
        config.threads,
        config.queue_capacity
    );
    loop {
        std::thread::park();
    }
}

fn cmd_stream(flags: &Flags) -> Result<(), String> {
    use colper_repro::attack::{StreamConfig, StreamingAttack};
    use colper_repro::scene::tiled::{ShardStore, TiledWorld, TiledWorldConfig};
    use colper_repro::scene::OUTDOOR_CLASS_COUNT;

    let tiles = flags.usize("tiles", 4)?.max(1);
    let points_per_tile = flags.usize("points-per-tile", 4096)?.max(1);
    let steps = flags.usize("steps", 12)?;
    let seed = flags.u64("seed", 7)?;

    let mut world_cfg = TiledWorldConfig::grid(tiles as u32, points_per_tile);
    world_cfg.world_seed = seed;
    if let Some(extent) = flags.get("extent") {
        world_cfg.tile_extent =
            extent.parse().map_err(|_| format!("--extent expects a number, got '{extent}'"))?;
    }

    // Budget: default to two resident tiles (core + one halo neighbor),
    // the minimum the streaming schedule needs.
    let tile_bytes = world_cfg.tile_bytes();
    let budget_bytes = match flags.get("budget-mb") {
        None => 2 * tile_bytes,
        Some(v) => {
            let mb: usize =
                v.parse().map_err(|_| format!("--budget-mb expects an integer, got '{v}'"))?;
            mb * (1 << 20)
        }
    };

    let (dir, ephemeral) = match flags.get("dir") {
        Some(d) => (std::path::PathBuf::from(d), false),
        None => (std::env::temp_dir().join(format!("colper-stream-{}", std::process::id())), true),
    };

    let total = world_cfg.total_points();
    println!(
        "world: {tiles}x{tiles} tiles x {points_per_tile} points = {total} points \
         ({:.1} MiB of shards), residency budget {:.1} MiB",
        (tiles * tiles * tile_bytes) as f64 / (1 << 20) as f64,
        budget_bytes as f64 / (1 << 20) as f64,
    );
    let world = if dir.join("world.meta").exists() {
        let world =
            TiledWorld::open(&dir).map_err(|e| format!("cannot open {}: {e}", dir.display()))?;
        println!("reusing shards at {}", dir.display());
        world
    } else {
        let world = TiledWorld::create(&dir, &world_cfg)
            .map_err(|e| format!("cannot create world at {}: {e}", dir.display()))?;
        println!("shards written to {}", dir.display());
        world
    };
    let mut store = ShardStore::new(world, budget_bytes);

    let mut rng = StdRng::seed_from_u64(seed);
    let model = PointNet2::new(PointNet2Config::tiny(OUTDOOR_CLASS_COUNT), &mut rng);

    let mut cfg = StreamConfig::new(AttackConfig::non_targeted(steps));
    cfg.window_core = flags.usize("window", cfg.window_core)?.max(1);
    cfg.seed = seed;
    if let Some(v) = flags.get("windows-per-tile") {
        let n: usize =
            v.parse().map_err(|_| format!("--windows-per-tile expects an integer, got '{v}'"))?;
        cfg.windows_per_tile = Some(n.max(1));
    }

    println!(
        "streaming COLPER: {} windows/tile max, {} steps/window...",
        cfg.windows_per_tile.map_or("all".to_string(), |n| n.to_string()),
        steps
    );
    let start = std::time::Instant::now();
    let outcome = StreamingAttack::new(cfg).run(&model, &mut store).map_err(|e| e.to_string())?;
    let elapsed = start.elapsed().as_secs_f64();

    println!(
        "clean: accuracy {:.1}%, mIoU {:.1}%",
        outcome.clean.accuracy() * 100.0,
        outcome.clean.mean_iou() * 100.0
    );
    println!(
        "adversarial: accuracy {:.1}%, mIoU {:.1}%, attack success {:.1}%, total L2^2 {:.2}",
        outcome.adversarial.accuracy() * 100.0,
        outcome.adversarial.mean_iou() * 100.0,
        outcome.attack_success() * 100.0,
        outcome.total_l2_sq
    );
    println!(
        "{} points attacked in {} windows over {} tiles ({:.0} points/sec), {} halo points",
        outcome.points_attacked,
        outcome.windows,
        outcome.tiles,
        outcome.points_attacked as f64 / elapsed.max(1e-9),
        outcome.halo_points
    );
    println!(
        "residency: peak {:.2} MiB of {:.2} MiB budget ({} evictions); warm-seat hit rate {:.1}%",
        outcome.residency.peak_bytes as f64 / (1 << 20) as f64,
        outcome.residency.budget_bytes as f64 / (1 << 20) as f64,
        outcome.residency.evictions,
        outcome.warm_hit_rate() * 100.0
    );
    assert!(
        outcome.residency.peak_bytes <= budget_bytes,
        "residency peak exceeded the hard budget"
    );

    if ephemeral {
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }
    Ok(())
}

fn cmd_train(flags: &Flags) -> Result<(), String> {
    let kind = flags.str("model", "pointnet");
    let points = flags.usize("points", 512)?;
    let rooms = flags.usize("rooms", 4)?;
    let epochs = flags.usize("epochs", 12)?;
    let default_out = format!("{kind}.clpr");
    let out = flags.str("out", &default_out);

    let mut rng = StdRng::seed_from_u64(flags.u64("seed", 11)?);
    let mut model = AnyModel::build(kind, &mut rng)?;
    let dataset = S3disLikeDataset::new(IndoorSceneConfig::with_points(points), rooms);
    let clouds: Vec<CloudTensors> =
        dataset.train_rooms().iter().map(|c| model.view(c, &mut rng)).collect();
    println!("training {kind} on {} rooms x {points} points...", clouds.len());
    let report = train_model(
        model.as_dyn_mut(),
        &clouds,
        &TrainConfig { epochs, lr: 0.01, target_accuracy: 0.95 },
        &mut rng,
    );
    println!(
        "trained to {:.1}% accuracy in {} epochs (final loss {:.4})",
        report.final_accuracy * 100.0,
        report.epochs_run,
        report.final_loss
    );
    let file = std::fs::File::create(out).map_err(|e| format!("cannot create {out}: {e}"))?;
    save_params(model.as_dyn().params(), std::io::BufWriter::new(file))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("weights written to {out}");
    Ok(())
}

fn cmd_attack(flags: &Flags) -> Result<(), String> {
    let kind = flags.str("model", "pointnet");
    let points = flags.usize("points", 512)?;
    let steps = flags.usize("steps", 120)?;
    let seed = flags.u64("seed", 5)?;

    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = AnyModel::build(kind, &mut rng)?;

    if let Some(path) = flags.get("weights") {
        let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
        let params = load_params(std::io::BufReader::new(file))
            .map_err(|e| format!("cannot load {path}: {e}"))?;
        if params.param_count() != model.as_dyn().params().param_count() {
            return Err(format!(
                "checkpoint {path} has {} parameters, model expects {}",
                params.param_count(),
                model.as_dyn().params().param_count()
            ));
        }
        *model.as_dyn_mut().params_mut() = params;
        println!("loaded weights from {path}");
    } else {
        // No checkpoint: train briefly so the attack has a real victim.
        println!("no --weights given; training a fresh victim...");
        let dataset = S3disLikeDataset::new(IndoorSceneConfig::with_points(points), 4);
        let clouds: Vec<CloudTensors> =
            dataset.train_rooms().iter().map(|c| model.view(c, &mut rng)).collect();
        let report = train_model(
            model.as_dyn_mut(),
            &clouds,
            &TrainConfig { epochs: 12, lr: 0.01, target_accuracy: 0.95 },
            &mut rng,
        );
        println!("victim accuracy: {:.1}%", report.final_accuracy * 100.0);
    }

    // Victim cloud: a fresh office.
    let cfg = IndoorSceneConfig {
        room_kind: Some(RoomKind::Office),
        ..IndoorSceneConfig::with_points(points)
    };
    let cloud = SceneGenerator::indoor(cfg).generate(seed.wrapping_add(12345));
    let tensors = model.view(&cloud, &mut rng);

    let (config, mask, goal_desc) = match flags.get("targeted") {
        Some(target_name) => {
            let target = indoor_class(target_name)?;
            let source = indoor_class(flags.str("source", "board"))?;
            let mask: Vec<bool> = tensors.labels.iter().map(|&l| l == source.label()).collect();
            if !mask.iter().any(|&m| m) {
                return Err(format!(
                    "the generated scene has no '{source}' points; try another --seed"
                ));
            }
            (
                AttackConfig::targeted(steps, target.label()),
                mask,
                format!("targeted {source} -> {target}"),
            )
        }
        None => (
            AttackConfig::non_targeted(steps),
            vec![true; tensors.len()],
            "non-targeted (all points)".to_string(),
        ),
    };

    // `--trace` (or COLPER_TRACE=1 in the environment) switches on the
    // observability layer: per-step telemetry plus span/counter
    // aggregates written under `results/`.
    if flags.is_set("trace") {
        colper_repro::obs::set_enabled(true);
    }
    let observer = Observer::from_env();

    // One geometry plan serves the clean prediction and every attack
    // step. The session derives cloud 0's RNG from the seed and runs the
    // clean prediction first; replay that stream here so the printed
    // (and `--map`ped) clean segmentation is exactly what it saw.
    let plan = colper_repro::attack::AttackPlan::build(model.as_dyn(), &tensors, &config);
    let mut clean_rng = StdRng::seed_from_u64(seed);
    let clean_preds = colper_repro::models::predict_planned(
        model.as_dyn(),
        &tensors,
        plan.geometry(),
        &mut clean_rng,
    );
    let mut cm = ConfusionMatrix::new(13);
    cm.update(&clean_preds, &tensors.labels);
    println!("clean: accuracy {:.1}%, aIoU {:.1}%", cm.accuracy() * 100.0, cm.mean_iou() * 100.0);

    println!("running COLPER: {goal_desc}, {steps} steps...");
    let mask_of = |_: &CloudTensors| mask.clone();
    let outcome = AttackSession::new(config)
        .plan(&plan)
        .observer(&observer)
        .seed(seed)
        .mask_with(&mask_of)
        .run(model.as_dyn(), std::slice::from_ref(&tensors));
    let item = &outcome.items[0];
    let result = &item.result;
    println!(
        "adversarial: accuracy {:.1}%, aIoU {:.1}%, L2 {:.2}, {} steps, converged: {}",
        item.adversarial_accuracy * 100.0,
        item.adversarial_miou * 100.0,
        result.l2(),
        result.steps_run,
        result.converged
    );
    println!("attacker metric (acc on attacked pts / SR): {:.1}%", result.success_metric * 100.0);

    if observer.is_active() {
        let trace = TraceReport::capture(&observer);
        let (jsonl, summary) = trace
            .write(std::path::Path::new("results"), "TRACE_attack")
            .map_err(|e| format!("cannot write trace: {e}"))?;
        let reports: Vec<String> = outcome.reports(&observer).iter().map(|r| r.to_json()).collect();
        let report_path = "results/TRACE_attack_report.json";
        std::fs::write(report_path, format!("[{}]\n", reports.join(",")))
            .map_err(|e| format!("cannot write {report_path}: {e}"))?;
        println!("\n{}", trace.table());
        println!("trace: {} + {} + {report_path}", jsonl.display(), summary.display());
    }

    let baseline = NoiseBaseline::new(result.l2_sq).run(model.as_dyn(), &tensors, &mask, &mut rng);
    let mut cm = ConfusionMatrix::new(13);
    cm.update(&baseline.predictions, &tensors.labels);
    println!(
        "matched-L2 noise baseline: accuracy {:.1}% (the drop is the optimization, not the noise)",
        cm.accuracy() * 100.0
    );

    if flags.is_set("map") {
        let mut map_cloud = cloud.clone();
        map_cloud.coords = tensors.coords.clone();
        println!("\nsegmentation before the attack:");
        print!("{}", colper_repro::scene::viz::top_down_map(&map_cloud, &clean_preds, 60, 20));
        println!("\nsegmentation after the attack:");
        print!(
            "{}",
            colper_repro::scene::viz::top_down_map(&map_cloud, &result.predictions, 60, 20)
        );
        let names: Vec<&str> = IndoorClass::ALL.iter().map(|c| c.name()).collect();
        println!("{}", colper_repro::scene::viz::legend(&names));
    }

    if let Some(path) = flags.get("ply") {
        // Export the adversarial cloud (RGB view) and the prediction view.
        let mut adv_cloud = cloud.clone();
        adv_cloud.set_colors_from_matrix(&result.adversarial_colors);
        let file = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        colper_repro::scene::io::write_ply(&adv_cloud, std::io::BufWriter::new(file))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        let seg_path = format!("{path}.segmentation.ply");
        let file = std::fs::File::create(&seg_path)
            .map_err(|e| format!("cannot create {seg_path}: {e}"))?;
        colper_repro::scene::io::write_label_ply(
            &adv_cloud,
            Some(&result.predictions),
            std::io::BufWriter::new(file),
        )
        .map_err(|e| format!("cannot write {seg_path}: {e}"))?;
        println!("adversarial cloud written to {path} (+ {seg_path})");
    }
    Ok(())
}

fn cmd_matrix(flags: &Flags, runtime: &Runtime) -> Result<(), String> {
    use colper_repro::matrix::{run, MatrixConfig, Registry};

    let mut cfg =
        if flags.is_set("quick") { MatrixConfig::quick() } else { MatrixConfig::standard() };
    cfg.points = flags.usize("points", cfg.points)?;
    cfg.steps = flags.usize("steps", cfg.steps)?;
    let out = flags.str("out", "results/BENCH_matrix.json");

    let registry = Registry::defaults(&cfg);
    println!(
        "robustness matrix ({} scale): {} attacks x {} defenses x {} models x {} scenes, {} threads",
        cfg.scale,
        registry.attacks.len(),
        registry.defenses.len(),
        registry.models.len(),
        registry.scenes.len(),
        runtime.threads()
    );
    let report = run(&registry, &cfg, runtime)?;
    println!("\n{}", report.table());

    if let Some(dir) = std::path::Path::new(out).parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(out, report.to_json()).map_err(|e| format!("cannot write {out}: {e}"))?;
    println!("report written to {out}");
    Ok(())
}
