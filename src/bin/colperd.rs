//! `colperd` — the standalone attack-service daemon.
//!
//! ```text
//! colperd [--addr HOST:PORT] [--workers N] [--threads N] [--queue-cap N] [--seat-cap N]
//! ```
//!
//! Serves `POST /attack`, `GET /healthz`, and `GET /stats` until killed.
//! See `colper_repro::serve` for the wire format.

use colper_repro::serve::{ServeConfig, Server};
use std::collections::HashMap;
use std::process::ExitCode;

const USAGE: &str = "usage:
  colperd [--addr HOST:PORT] [--workers N] [--threads N] [--queue-cap N] [--seat-cap N]";

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let Some(name) = args[i].strip_prefix("--") else {
            return Err(format!("unexpected argument '{}'", args[i]));
        };
        let value = args.get(i + 1).ok_or_else(|| format!("--{name} needs a value"))?;
        flags.insert(name.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn flag_usize(
    flags: &HashMap<String, String>,
    name: &str,
    default: usize,
) -> Result<usize, String> {
    match flags.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("--{name} expects an integer, got '{v}'")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = parse_flags(&args)?;
    let defaults = ServeConfig::default();
    let config = ServeConfig {
        addr: flags.get("addr").cloned().unwrap_or(defaults.addr),
        workers: flag_usize(&flags, "workers", defaults.workers)?,
        threads: flag_usize(&flags, "threads", defaults.threads)?,
        queue_capacity: flag_usize(&flags, "queue-cap", defaults.queue_capacity)?,
        seat_cap: flag_usize(&flags, "seat-cap", defaults.seat_cap)?,
    };
    let server = Server::start(&config).map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    println!(
        "colperd listening on {} ({} workers, {} compute threads, queue capacity {})",
        server.local_addr(),
        config.workers,
        config.threads,
        config.queue_capacity
    );
    // Serve until the process is killed.
    loop {
        std::thread::park();
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}
