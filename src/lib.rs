//! # COLPER reproduction — umbrella crate
//!
//! This crate re-exports the whole workspace behind one dependency, so a
//! downstream user can write `colper_repro::attack::Colper` instead of
//! depending on eight crates. See the README for a tour and `examples/`
//! for runnable end-to-end scenarios.
//!
//! The workspace reproduces *"On Adversarial Robustness of Point Cloud
//! Semantic Segmentation"* (DSN 2023): the COLPER color-only adversarial
//! perturbation attack, the three segmentation models it targets
//! (PointNet++, ResGCN/DeepGCN, RandLA-Net), the synthetic stand-ins for
//! the S3DIS and Semantic3D datasets, and the full evaluation harness.
//!
//! # Quickstart
//!
//! ```
//! use colper_repro::scene::{IndoorSceneConfig, SceneGenerator};
//!
//! // Generate a small labeled indoor point cloud (an S3DIS-like block).
//! let gen = SceneGenerator::indoor(IndoorSceneConfig::default());
//! let cloud = gen.generate(42);
//! assert!(cloud.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Observability: timing spans, counters, per-step attack telemetry
/// (re-export of `colper-obs`).
pub use colper_obs as obs;

/// The shared work-stealing compute pool every knob plumbs into
/// (re-export of `colper-runtime`).
pub use colper_runtime as runtime;

/// Dense 2-D tensor math (re-export of `colper-tensor`).
pub use colper_tensor as tensor;

/// Reverse-mode autodiff tape (re-export of `colper-autodiff`).
pub use colper_autodiff as autodiff;

/// Point-cloud geometry: kd-trees, k-NN, sampling (re-export of
/// `colper-geom`).
pub use colper_geom as geom;

/// Synthetic S3DIS-like / Semantic3D-like scene generators (re-export of
/// `colper-scene`).
pub use colper_scene as scene;

/// Neural-network layers, losses, optimizers (re-export of `colper-nn`).
pub use colper_nn as nn;

/// The three segmentation models (re-export of `colper-models`).
pub use colper_models as models;

/// The COLPER attack and its baselines (re-export of `colper-attack`).
pub use colper_attack as attack;

/// Segmentation and attack metrics (re-export of `colper-metrics`).
pub use colper_metrics as metrics;

/// Candidate defenses: input transforms, adversarial training, anomaly
/// detection (re-export of `colper-defense`).
pub use colper_defense as defense;

/// The attack × defense robustness matrix: registry, runner, ranked
/// report (re-export of `colper-matrix`).
pub use colper_matrix as matrix;

/// `colperd`: the pooled, backpressured attack service and its
/// load-test client (re-export of `colper-serve`).
pub use colper_serve as serve;
