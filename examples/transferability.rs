//! Transferability (the paper's Table 8): adversarial samples generated
//! against ResGCN, renormalized with Eq. 10, and replayed against
//! PointNet++ — across model families.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example transferability
//! ```

use colper_repro::attack::{apply_adversarial_colors, evaluate_cloud, AttackConfig, AttackSession};
use colper_repro::models::{
    train_model, CloudTensors, PointNet2, PointNet2Config, ResGcn, ResGcnConfig, TrainConfig,
};
use colper_repro::scene::{normalize, S3disLikeDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(41);
    let dataset = S3disLikeDataset::small();
    let train_rooms = dataset.train_rooms();

    println!("training the source model (ResGCN)...");
    let rg_train: Vec<CloudTensors> = train_rooms
        .iter()
        .take(10)
        .map(|c| CloudTensors::from_cloud(&normalize::resgcn_view(c)))
        .collect();
    let mut resgcn = ResGcn::new(ResGcnConfig::small(13), &mut rng);
    train_model(
        &mut resgcn,
        &rg_train,
        &TrainConfig { epochs: 10, lr: 0.01, target_accuracy: 0.92 },
        &mut rng,
    );

    println!("training the receiving model (PointNet++)...");
    let pn_train: Vec<CloudTensors> = train_rooms
        .iter()
        .take(10)
        .map(|c| CloudTensors::from_cloud(&normalize::pointnet_view(c)))
        .collect();
    let mut pointnet = PointNet2::new(PointNet2Config::small(13), &mut rng);
    train_model(
        &mut pointnet,
        &pn_train,
        &TrainConfig { epochs: 10, lr: 0.01, target_accuracy: 0.92 },
        &mut rng,
    );

    let room = dataset.eval_rooms().remove(0);

    // Clean references on both models.
    let clean_rg = evaluate_cloud(&resgcn, &normalize::resgcn_view(&room), &mut rng);
    let clean_pn = evaluate_cloud(&pointnet, &normalize::pointnet_view(&room), &mut rng);
    println!(
        "clean: resgcn {:.1}% / pointnet++ {:.1}%",
        clean_rg.accuracy * 100.0,
        clean_pn.accuracy * 100.0
    );

    // Attack ResGCN.
    println!("generating adversarial sample against ResGCN...");
    let rg_view = normalize::resgcn_view(&room);
    let tensors = CloudTensors::from_cloud(&rg_view);
    let outcome = AttackSession::new(AttackConfig::non_targeted(100))
        .seed(41)
        .run(&resgcn, std::slice::from_ref(&tensors));
    let result = &outcome.items[0].result;
    println!(
        "  on source model: accuracy {:.1}% (L2 {:.2})",
        result.success_metric * 100.0,
        result.l2()
    );

    // Replay against PointNet++ after the paper's Eq. 10 transform.
    let adv_cloud = apply_adversarial_colors(&rg_view, &result.adversarial_colors);
    let eq10 = normalize::eq10_transform(&adv_cloud);
    let transferred = evaluate_cloud(&pointnet, &eq10, &mut rng);
    println!(
        "  transferred (eq. 10): pointnet++ accuracy {:.1}% (clean was {:.1}%)",
        transferred.accuracy * 100.0,
        clean_pn.accuracy * 100.0
    );

    let exact = normalize::resgcn_to_pointnet(&adv_cloud);
    let transferred_exact = evaluate_cloud(&pointnet, &exact, &mut rng);
    println!(
        "  transferred (range-exact): pointnet++ accuracy {:.1}%",
        transferred_exact.accuracy * 100.0
    );
    println!(
        "transfer drop: {:.1} percentage points without ever touching PointNet++ gradients",
        (clean_pn.accuracy - transferred_exact.accuracy.min(transferred.accuracy)) * 100.0
    );
}
