//! Quickstart: train a small PointNet++ on synthetic indoor scenes, then
//! break it with COLPER's color-only perturbation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use colper_repro::attack::{AttackConfig, AttackSession};
use colper_repro::models::{
    evaluate_on, train_model, CloudTensors, PointNet2, PointNet2Config, TrainConfig,
};
use colper_repro::obs::{Observer, TraceReport};
use colper_repro::scene::{normalize, IndoorSceneConfig, RoomKind, SceneGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Synthesize a handful of S3DIS-like office rooms (the real
    //    dataset is license-gated; the generator preserves the
    //    color-informativeness the attack depends on).
    println!("generating synthetic rooms...");
    let rooms: Vec<CloudTensors> = (0..6)
        .map(|i| {
            let cfg = IndoorSceneConfig {
                room_kind: Some(RoomKind::Office),
                ..IndoorSceneConfig::with_points(384)
            };
            let cloud = SceneGenerator::indoor(cfg).generate(1000 + i);
            CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
        })
        .collect();

    // 2. Train the victim ("pre-trained model" stand-in).
    println!("training PointNet++ victim...");
    let mut model = PointNet2::new(PointNet2Config::small(13), &mut rng);
    let report = train_model(
        &mut model,
        &rooms,
        &TrainConfig { epochs: 12, lr: 0.01, target_accuracy: 0.93 },
        &mut rng,
    );
    println!(
        "  trained: {:.1}% accuracy after {} epochs",
        report.final_accuracy * 100.0,
        report.epochs_run
    );

    // 3. Attack one held-out room with color-only perturbation.
    let victim_cloud = {
        let cfg = IndoorSceneConfig {
            room_kind: Some(RoomKind::Office),
            ..IndoorSceneConfig::with_points(384)
        };
        let cloud = SceneGenerator::indoor(cfg).generate(9999);
        CloudTensors::from_cloud(&normalize::pointnet_view(&cloud))
    };
    let clean_acc = evaluate_on(&model, &victim_cloud, &mut rng);
    println!("clean accuracy on held-out room: {:.1}%", clean_acc * 100.0);

    // Honors COLPER_TRACE=1: run with it set to also get per-step attack
    // telemetry and an end-of-run timing table.
    let observer = Observer::from_env();
    println!("running COLPER (non-targeted, all points)...");
    let outcome = AttackSession::new(AttackConfig::non_targeted(80))
        .observer(&observer)
        .seed(7)
        .run(&model, std::slice::from_ref(&victim_cloud));
    let result = &outcome.items[0].result;

    println!("  perturbation L2:        {:.2}", result.l2());
    println!("  post-attack accuracy:   {:.1}%", result.success_metric * 100.0);
    println!("  converged:              {} ({} steps)", result.converged, result.steps_run);
    println!(
        "  accuracy drop:          {:.1} percentage points, color-only",
        (clean_acc - result.success_metric) * 100.0
    );

    if observer.is_active() {
        println!("\n{}", TraceReport::capture(&observer).table());
    }
}
