//! Outdoor scenario (the paper's Semantic3D experiments): attack
//! RandLA-Net on synthetic terrestrial scans — non-targeted over the
//! whole scene, then targeted "hide the car as vegetation" (Table 4).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example outdoor_attack
//! ```

use colper_repro::attack::{AttackConfig, AttackSession, NoiseBaseline};
use colper_repro::metrics::success_rate;
use colper_repro::models::{
    evaluate_on, train_model, CloudTensors, RandLaNet, RandLaNetConfig, TrainConfig,
};
use colper_repro::scene::{normalize, OutdoorClass, Semantic3dLikeDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(29);
    let dataset = Semantic3dLikeDataset::small();

    println!("training RandLA-Net on outdoor scenes...");
    let train: Vec<CloudTensors> = dataset
        .train_scenes()
        .iter()
        .take(10)
        .map(|c| CloudTensors::from_cloud(&normalize::randla_view(c, c.len(), &mut rng)))
        .collect();
    let mut model = RandLaNet::new(RandLaNetConfig::small(8), &mut rng);
    let report = train_model(
        &mut model,
        &train,
        &TrainConfig { epochs: 12, lr: 0.01, target_accuracy: 0.93 },
        &mut rng,
    );
    println!("  trained: {:.1}% accuracy", report.final_accuracy * 100.0);

    // Pick an evaluation scene containing a car.
    let scene = dataset
        .eval_scenes()
        .into_iter()
        .map(|c| CloudTensors::from_cloud(&normalize::randla_view(&c, c.len(), &mut rng)))
        .find(|t| t.labels.iter().filter(|&&l| l == OutdoorClass::Car.label()).count() >= 15)
        .expect("an evaluation scene with a car");

    let clean_acc = evaluate_on(&model, &scene, &mut rng);
    println!("clean accuracy on evaluation scene: {:.1}%", clean_acc * 100.0);

    // Non-targeted attack over the whole scene, plus the matched-L2
    // noise baseline of Table 3.
    println!("running non-targeted COLPER...");
    let mask = vec![true; scene.len()];
    let outcome = AttackSession::new(AttackConfig::non_targeted(80))
        .seed(29)
        .run(&model, std::slice::from_ref(&scene));
    let result = &outcome.items[0].result;
    let baseline = NoiseBaseline::new(result.l2_sq).run(&model, &scene, &mask, &mut rng);
    println!("  COLPER:   L2 {:.2}, accuracy {:.1}%", result.l2(), result.success_metric * 100.0);
    println!(
        "  baseline: L2 {:.2}, accuracy {:.1}% (same noise budget, no optimization)",
        baseline.l2_sq.sqrt(),
        baseline.success_metric * 100.0
    );

    // Targeted: car -> high vegetation.
    let source = OutdoorClass::Car;
    let target = OutdoorClass::HighVegetation;
    println!("running targeted COLPER: {source} -> {target}...");
    let car_mask: Vec<bool> = scene.labels.iter().map(|&l| l == source.label()).collect();
    let outcome = AttackSession::new(AttackConfig::targeted(100, target.label()))
        .mask_source_class(source.label())
        .seed(30)
        .run(&model, std::slice::from_ref(&scene));
    let result = &outcome.items[0].result;
    let targets = vec![target.label(); scene.len()];
    println!(
        "  SR: {:.1}% of {} car points now predicted as {target} (L2 {:.2})",
        success_rate(&result.predictions, &targets, &car_mask) * 100.0,
        result.attacked_points,
        result.l2()
    );
}
