//! The paper's headline targeted scenario: make a whiteboard "disappear"
//! by driving its points to be predicted as wall (Figure 9 of the
//! paper), against ResGCN on an Office-33-style room.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example indoor_targeted_attack
//! ```

use colper_repro::attack::{AttackConfig, AttackSession};
use colper_repro::metrics::{oob_metrics, success_rate};
use colper_repro::models::{predict, train_model, CloudTensors, ResGcn, ResGcnConfig, TrainConfig};
use colper_repro::scene::{normalize, IndoorClass, S3disLikeDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(13);
    let dataset = S3disLikeDataset::small();

    println!("training ResGCN victim on areas 1-4 and 6...");
    let train: Vec<CloudTensors> = dataset
        .train_rooms()
        .iter()
        .take(12)
        .map(|c| CloudTensors::from_cloud(&normalize::resgcn_view(c)))
        .collect();
    let mut model = ResGcn::new(ResGcnConfig::small(13), &mut rng);
    let report = train_model(
        &mut model,
        &train,
        &TrainConfig { epochs: 12, lr: 0.01, target_accuracy: 0.93 },
        &mut rng,
    );
    println!("  trained: {:.1}% accuracy", report.final_accuracy * 100.0);

    // The Office 33 fixture of Area 5.
    let office = CloudTensors::from_cloud(&normalize::resgcn_view(&dataset.office33()));
    let target = IndoorClass::Wall;
    let clean_preds = predict(&model, &office, &mut rng);
    let targets = vec![target.label(); office.len()];

    // Pick the most interesting source class: well-populated and not
    // already confused with the target.
    let source = IndoorClass::targeted_attack_sources()
        .into_iter()
        .filter(|s| office.labels.iter().filter(|&&l| l == s.label()).count() >= 15)
        .min_by(|a, b| {
            let sr = |s: &IndoorClass| {
                let mask: Vec<bool> = office.labels.iter().map(|&l| l == s.label()).collect();
                success_rate(&clean_preds, &targets, &mask)
            };
            sr(a).partial_cmp(&sr(b)).expect("finite")
        })
        .expect("a populated source class");
    let mask: Vec<bool> = office.labels.iter().map(|&l| l == source.label()).collect();
    let source_points = mask.iter().filter(|&&m| m).count();
    println!("office 33: {} points, {source_points} of them {source}", office.len());
    println!(
        "clean SR toward '{target}': {:.1}%",
        success_rate(&clean_preds, &targets, &mask) * 100.0
    );

    println!("running COLPER targeted attack {source} -> {target}...");
    let outcome = AttackSession::new(AttackConfig::targeted(100, target.label()))
        .mask_source_class(source.label())
        .seed(13)
        .run(&model, std::slice::from_ref(&office));
    let result = &outcome.items[0].result;
    let stats = oob_metrics(&result.predictions, &office.labels, &mask, 13);

    println!("  perturbation L2:   {:.2}", result.l2());
    println!("  success rate:      {:.1}%", result.success_metric * 100.0);
    println!(
        "  out-of-band acc:   {:.1}% (overall {:.1}%) — collateral damage stays small",
        stats.oob_accuracy * 100.0,
        stats.accuracy * 100.0
    );
    println!(
        "  {source} points predicted as wall: {}/{}",
        result.predictions.iter().zip(&mask).filter(|(&p, &m)| m && p == target.label()).count(),
        source_points
    );
}
